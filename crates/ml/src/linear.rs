//! Multinomial logistic regression (softmax regression).
//!
//! The workhorse model of the reproduction: convex, so SGD dynamics are
//! clean, and small enough (`(dim+1) × classes` parameters) that robust
//! aggregation over 64 clients runs in microseconds.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::loss::{argmax, ce_grad_in_place, cross_entropy, softmax_in_place};
use crate::model::{BatchScratch, Model};

/// Softmax regression with weights `W (k×d)` and bias `b (k)`, stored
/// flat as `[W row 0, W row 1, ..., b]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearSoftmax {
    dim: usize,
    classes: usize,
    /// Flat parameters, length `classes * dim + classes`.
    theta: Vec<f32>,
}

impl LinearSoftmax {
    /// A zero-initialized model (a valid, symmetric starting point for
    /// softmax regression).
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(dim > 0 && classes >= 2);
        Self {
            dim,
            classes,
            theta: vec![0.0; classes * dim + classes],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    #[inline]
    fn w_row(&self, c: usize) -> &[f32] {
        &self.theta[c * self.dim..(c + 1) * self.dim]
    }

    /// Writes class probabilities for `x` into `probs`.
    pub fn forward(&self, x: &[f32], probs: &mut [f32]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(probs.len(), self.classes);
        let bias = self.classes * self.dim;
        for (c, p) in probs.iter_mut().enumerate() {
            *p = hfl_tensor::ops::dot(self.w_row(c), x) as f32 + self.theta[bias + c];
        }
        softmax_in_place(probs);
    }
}

impl Model for LinearSoftmax {
    fn param_len(&self) -> usize {
        self.theta.len()
    }

    fn params(&self) -> &[f32] {
        &self.theta
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.theta.len(), "parameter length mismatch");
        self.theta.copy_from_slice(p);
    }

    fn predict(&self, x: &[f32]) -> u8 {
        let mut probs = vec![0.0f32; self.classes];
        self.forward(x, &mut probs);
        argmax(&probs) as u8
    }

    fn loss_grad_batch(&self, data: &Dataset, indices: &[usize], grad: &mut [f32]) -> f64 {
        self.loss_grad_batch_with(data, indices, grad, &mut BatchScratch::default())
    }

    fn loss_grad_batch_with(
        &self,
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert_eq!(grad.len(), self.theta.len(), "gradient buffer mismatch");
        assert!(!indices.is_empty(), "empty batch");
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        let inv_n = 1.0 / indices.len() as f32;
        let bias_off = self.classes * self.dim;
        let probs = &mut scratch.probs;
        probs.clear();
        probs.resize(self.classes, 0.0);
        let mut loss = 0.0f64;
        for &i in indices {
            let x = data.x(i);
            let y = data.y(i);
            self.forward(x, probs);
            loss += cross_entropy(probs, y);
            ce_grad_in_place(probs, y);
            // dL/dW_c = err_c * x ; dL/db_c = err_c
            for (c, err) in probs.iter().enumerate() {
                let coeff = inv_n * *err;
                if coeff != 0.0 {
                    hfl_tensor::ops::axpy(coeff, x, &mut grad[c * self.dim..(c + 1) * self.dim]);
                }
                grad[bias_off + c] += coeff;
            }
        }
        loss / indices.len() as f64
    }

    fn reinit(&mut self, _rng: &mut StdRng) {
        // Zero init is canonical (and symmetric) for softmax regression.
        self.theta.iter_mut().for_each(|t| *t = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{train_local, SgdConfig};
    use crate::synth::{SynthConfig, SyntheticDigits};
    use rand::SeedableRng;

    #[test]
    fn param_roundtrip() {
        let mut m = LinearSoftmax::new(3, 2);
        let p: Vec<f32> = (0..m.param_len()).map(|i| i as f32).collect();
        m.set_params(&p);
        assert_eq!(m.params(), p.as_slice());
    }

    #[test]
    fn zero_model_uniform_probs() {
        let m = LinearSoftmax::new(4, 5);
        let mut probs = vec![0.0f32; 5];
        m.forward(&[1.0, -1.0, 2.0, 0.5], &mut probs);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut m = LinearSoftmax::new(3, 3);
        let mut ds = Dataset::empty(3, 3);
        ds.push(&[1.0, 0.5, -0.5], 0);
        ds.push(&[-1.0, 0.2, 0.3], 2);
        let p0: Vec<f32> = (0..m.param_len())
            .map(|i| 0.05 * (i as f32 - 5.0))
            .collect();
        m.set_params(&p0);

        let idx = [0usize, 1];
        let mut grad = vec![0.0f32; m.param_len()];
        let loss0 = m.loss_grad_batch(&ds, &idx, &mut grad);

        let eps = 1e-3f32;
        for j in [0usize, 4, 9, m.param_len() - 1] {
            let mut p = p0.clone();
            p[j] += eps;
            let mut mp = LinearSoftmax::new(3, 3);
            mp.set_params(&p);
            let mut scratch = vec![0.0f32; m.param_len()];
            let loss1 = mp.loss_grad_batch(&ds, &idx, &mut scratch);
            let fd = (loss1 - loss0) / eps as f64;
            assert!(
                (fd - grad[j] as f64).abs() < 2e-3,
                "coord {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn learns_the_synthetic_task() {
        let task = SyntheticDigits::generate(&SynthConfig::tiny());
        let mut m = LinearSoftmax::new(task.train.dim(), task.train.num_classes());
        let cfg = SgdConfig {
            lr: 0.5,
            batch_size: 32,
            ..SgdConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            train_local(&mut m, &task.train, &cfg, 5, &mut rng);
        }
        let acc = crate::metrics::accuracy(&m, &task.test);
        assert!(acc > 0.8, "accuracy only {acc}");
    }
}
