//! The flat-parameter model abstraction every FL component works against.

use rand::rngs::StdRng;

use crate::dataset::Dataset;

/// Reusable per-batch forward/backward buffers, so steady-state training
/// rounds perform no heap allocation. Implementations resize what they
/// need (`clear` + `resize`), which is free once capacity has grown.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    /// Class-probability / logit buffer (`classes` long).
    pub probs: Vec<f32>,
    /// Hidden activations (MLP only).
    pub hidden: Vec<f32>,
    /// Hidden-layer gradient (MLP only).
    pub dhidden: Vec<f32>,
}

/// A classification model whose parameters live in one contiguous buffer.
///
/// Federated learning, Byzantine-robust aggregation and consensus all
/// exchange *flat parameter vectors*; a `Model` is the bridge between
/// those vectors and forward/backward computation. Implementations keep
/// their parameters in a single `Vec<f32>` so `params()` is a zero-copy
/// borrow.
pub trait Model: Send + Sync {
    /// Total number of scalar parameters.
    fn param_len(&self) -> usize;

    /// Borrow the flat parameter vector.
    fn params(&self) -> &[f32];

    /// Overwrite the parameters from a flat vector of exactly
    /// [`Model::param_len`] elements.
    fn set_params(&mut self, p: &[f32]);

    /// Predicted class for one feature row.
    fn predict(&self, x: &[f32]) -> u8;

    /// Computes the mean cross-entropy loss over the batch `indices` of
    /// `data` and *accumulates* the mean gradient into `grad` (callers
    /// zero `grad` first). Returns the mean loss.
    fn loss_grad_batch(&self, data: &Dataset, indices: &[usize], grad: &mut [f32]) -> f64;

    /// [`Model::loss_grad_batch`] with caller-owned scratch buffers —
    /// the allocation-free entry point the hot training loop uses.
    /// Numerically identical to `loss_grad_batch`; the default ignores
    /// the scratch and delegates.
    fn loss_grad_batch_with(
        &self,
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
        scratch: &mut BatchScratch,
    ) -> f64 {
        let _ = scratch;
        self.loss_grad_batch(data, indices, grad)
    }

    /// Re-initializes the parameters from an RNG (fresh model, same
    /// architecture).
    fn reinit(&mut self, rng: &mut StdRng);

    /// Clones the model behind the trait object.
    fn clone_box(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Mean loss of a model over an entire dataset (no gradient) — used for
/// monitoring and by validation-vote consensus variants that score by
/// loss instead of accuracy.
pub fn mean_loss(model: &dyn Model, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "mean_loss over empty dataset");
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut scratch = vec![0.0f32; model.param_len()];
    model.loss_grad_batch(data, &indices, &mut scratch)
}
