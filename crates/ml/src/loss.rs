//! Softmax and cross-entropy primitives shared by the models.

/// Numerically-stable in-place softmax: `logits` becomes a probability
/// vector.
pub fn softmax_in_place(logits: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax of empty vector");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    // sum >= 1 because one exponent is exp(0) = 1.
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Cross-entropy loss of a probability vector against an integer label.
/// Probabilities are clamped away from zero to avoid infinities.
#[inline]
pub fn cross_entropy(probs: &[f32], y: u8) -> f64 {
    let p = probs[y as usize].max(1e-12);
    -(p as f64).ln()
}

/// Writes the softmax-cross-entropy output gradient `p − onehot(y)` into
/// `probs` in place (the standard fused backward step).
#[inline]
pub fn ce_grad_in_place(probs: &mut [f32], y: u8) {
    probs[y as usize] -= 1.0;
}

/// Index of the maximum element (argmax prediction). Ties resolve to the
/// first maximum, which keeps predictions deterministic.
#[inline]
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty vector");
    let mut best = 0usize;
    let mut best_v = xs[0];
    for (i, v) in xs.iter().enumerate().skip(1) {
        if *v > best_v {
            best_v = *v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut l = [1.0, 2.0, 3.0];
        softmax_in_place(&mut l);
        let s: f32 = l.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(l[2] > l[1] && l[1] > l[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [101.0, 102.0, 103.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let mut l = [1000.0, 0.0];
        softmax_in_place(&mut l);
        assert!(l[0] > 0.999 && l.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let ce = cross_entropy(&[0.0, 1.0, 0.0], 1);
        assert!(ce.abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_wrong_prediction_is_large() {
        let ce = cross_entropy(&[1.0, 0.0], 1);
        assert!(ce > 20.0); // -ln(1e-12)
    }

    #[test]
    fn ce_grad_subtracts_onehot() {
        let mut p = [0.2, 0.5, 0.3];
        ce_grad_in_place(&mut p, 1);
        assert!((p[1] - (-0.5)).abs() < 1e-6);
        assert!((p[0] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
