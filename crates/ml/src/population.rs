//! Lazy client populations: shard derivation as a pure function of
//! `(seed, client, distribution)`.
//!
//! The eager partitioners in [`crate::partition`] materialize one
//! [`Dataset`] per client, which couples memory and prepare time to the
//! population size `n`. At cross-device scale (n = 10⁶ clients, cohorts
//! of 64) only a handful of clients train per round, so the runner needs
//! the *plan* of the partition — which sample indices belong to which
//! client — without materializing any shard until that client is
//! actually sampled.
//!
//! [`ClientPopulation`] stores exactly that plan:
//!
//! * [`ShardPlan::Iid`] keeps the seeded per-label deal order once
//!   (O(dataset) integers, independent of `n`); client `c` owns the
//!   positions `p ≡ c (mod n)` of the sequence, matching the eager
//!   round-robin deal index-for-index.
//! * [`ShardPlan::Csr`] stores explicit per-client index lists in CSR
//!   layout for the non-IID and Dirichlet partitioners, whose shard
//!   composition is not expressible as a stride rule. Those partitioners
//!   require `data.len() ≥ n`, so the CSR arrays are O(dataset) too.
//!
//! Deriving a shard is a pure, idempotent gather: `shard(data, c)` called
//! any number of times, in any order, from any thread, yields the same
//! bytes the eager partitioner would have produced for client `c` — the
//! unit tests below pin that equivalence for every distribution at
//! n ≤ 64.

use crate::dataset::Dataset;
use crate::partition::{dirichlet_assignments, iid_deal_order, noniid_assignments};

/// The index-level description of a partition: how to find client `c`'s
/// sample indices without materializing anyone else's.
#[derive(Clone, Debug)]
pub enum ShardPlan {
    /// IID round-robin deal: client `c` owns positions `p ≡ c (mod n)`
    /// of the seeded deal order.
    Iid {
        /// The per-label-shuffled sample indices in deal (cursor) order.
        order: Vec<u32>,
    },
    /// Explicit per-client index lists in CSR layout: client `c`'s
    /// indices are `indices[offsets[c]..offsets[c + 1]]`, stored in the
    /// eager partitioner's materialization order.
    Csr {
        /// `n_clients + 1` row offsets into `indices`.
        offsets: Vec<u32>,
        /// Concatenated per-client sample indices.
        indices: Vec<u32>,
    },
}

/// A population of `n` clients whose shards are derived on demand.
#[derive(Clone, Debug)]
pub struct ClientPopulation {
    n_clients: usize,
    plan: ShardPlan,
}

fn csr_from_assignments(assignments: Vec<Vec<usize>>) -> ShardPlan {
    let total: usize = assignments.iter().map(|a| a.len()).sum();
    let mut offsets = Vec::with_capacity(assignments.len() + 1);
    let mut indices = Vec::with_capacity(total);
    offsets.push(0u32);
    for a in assignments {
        indices.extend(a.into_iter().map(|i| i as u32));
        offsets.push(indices.len() as u32);
    }
    ShardPlan::Csr { offsets, indices }
}

impl ClientPopulation {
    /// IID plan over `n_clients`, seeded identically to
    /// [`crate::partition::iid_partition`].
    pub fn iid(data: &Dataset, n_clients: usize, seed: u64) -> Self {
        assert!(n_clients > 0, "need at least one client");
        let order = iid_deal_order(data, seed)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        Self {
            n_clients,
            plan: ShardPlan::Iid { order },
        }
    }

    /// Extreme non-IID plan, seeded identically to
    /// [`crate::partition::noniid_partition`].
    pub fn noniid(
        data: &Dataset,
        n_clients: usize,
        labels_per_client: usize,
        malicious: &[bool],
        seed: u64,
    ) -> Self {
        let assignments = noniid_assignments(data, n_clients, labels_per_client, malicious, seed);
        Self {
            n_clients,
            plan: csr_from_assignments(assignments),
        }
    }

    /// Dirichlet-α plan, seeded identically to
    /// [`crate::partition::dirichlet_partition`].
    pub fn dirichlet(
        data: &Dataset,
        n_clients: usize,
        alpha: f64,
        malicious: &[bool],
        seed: u64,
    ) -> Self {
        let assignments = dirichlet_assignments(data, n_clients, alpha, malicious, seed);
        Self {
            n_clients,
            plan: csr_from_assignments(assignments),
        }
    }

    /// Number of clients in the population.
    pub fn num_clients(&self) -> usize {
        self.n_clients
    }

    /// The shard plan (exposed for size accounting and tests).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Client `client`'s sample indices, in the eager partitioner's
    /// materialization order.
    pub fn shard_indices(&self, client: usize) -> Vec<usize> {
        assert!(client < self.n_clients, "client out of range");
        match &self.plan {
            ShardPlan::Iid { order } => order
                .iter()
                .skip(client)
                .step_by(self.n_clients)
                .map(|&i| i as usize)
                .collect(),
            ShardPlan::Csr { offsets, indices } => indices
                [offsets[client] as usize..offsets[client + 1] as usize]
                .iter()
                .map(|&i| i as usize)
                .collect(),
        }
    }

    /// Number of samples client `client` holds, without gathering them.
    pub fn shard_len(&self, client: usize) -> usize {
        assert!(client < self.n_clients, "client out of range");
        match &self.plan {
            ShardPlan::Iid { order } => {
                let n = order.len();
                n / self.n_clients + usize::from(client < n % self.n_clients)
            }
            ShardPlan::Csr { offsets, .. } => (offsets[client + 1] - offsets[client]) as usize,
        }
    }

    /// Derives client `client`'s shard: a pure ordered gather from
    /// `data`, byte-identical to the eager partitioner's output.
    pub fn shard(&self, data: &Dataset, client: usize) -> Dataset {
        data.subset(&self.shard_indices(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{dirichlet_partition, iid_partition, noniid_partition};
    use crate::synth::{SynthConfig, SyntheticDigits};

    fn task() -> SyntheticDigits {
        SyntheticDigits::generate(&SynthConfig {
            train_samples: 6_400,
            test_samples: 100,
            ..SynthConfig::tiny()
        })
    }

    fn assert_same_dataset(eager: &Dataset, lazy: &Dataset, client: usize) {
        assert_eq!(eager.len(), lazy.len(), "client {client} length");
        assert_eq!(eager.labels(), lazy.labels(), "client {client} labels");
        for i in 0..eager.len() {
            assert_eq!(eager.x(i), lazy.x(i), "client {client} row {i}");
        }
    }

    #[test]
    fn iid_lazy_matches_eager_byte_for_byte() {
        let t = task();
        for n in [1usize, 7, 64] {
            let eager = iid_partition(&t.train, n, 42);
            let pop = ClientPopulation::iid(&t.train, n, 42);
            for (c, e) in eager.iter().enumerate() {
                assert_same_dataset(e, &pop.shard(&t.train, c), c);
                assert_eq!(pop.shard_len(c), e.len());
            }
        }
    }

    #[test]
    fn noniid_lazy_matches_eager_byte_for_byte() {
        let t = task();
        let mut malicious = vec![false; 64];
        for m in malicious.iter_mut().take(20) {
            *m = true;
        }
        let eager = noniid_partition(&t.train, 64, 2, &malicious, 7);
        let pop = ClientPopulation::noniid(&t.train, 64, 2, &malicious, 7);
        for (c, e) in eager.iter().enumerate() {
            assert_same_dataset(e, &pop.shard(&t.train, c), c);
            assert_eq!(pop.shard_len(c), e.len());
        }
    }

    #[test]
    fn dirichlet_lazy_matches_eager_byte_for_byte() {
        let t = task();
        let malicious = vec![false; 32];
        let eager = dirichlet_partition(&t.train, 32, 0.3, &malicious, 11);
        let pop = ClientPopulation::dirichlet(&t.train, 32, 0.3, &malicious, 11);
        for (c, e) in eager.iter().enumerate() {
            assert_same_dataset(e, &pop.shard(&t.train, c), c);
            assert_eq!(pop.shard_len(c), e.len());
        }
    }

    #[test]
    fn shard_derivation_is_pure() {
        let t = task();
        let pop = ClientPopulation::iid(&t.train, 16, 9);
        // Derive out of order, repeatedly: same bytes every time.
        let first = pop.shard(&t.train, 3);
        let _ = pop.shard(&t.train, 15);
        let again = pop.shard(&t.train, 3);
        assert_same_dataset(&first, &again, 3);
    }

    #[test]
    fn iid_plan_memory_is_population_independent() {
        let t = task();
        let small = ClientPopulation::iid(&t.train, 4, 1);
        let large = ClientPopulation::iid(&t.train, 100_000, 1);
        let order_len = |p: &ClientPopulation| match p.plan() {
            ShardPlan::Iid { order } => order.len(),
            _ => panic!("expected IID plan"),
        };
        // Same stored plan size regardless of client count.
        assert_eq!(order_len(&small), order_len(&large));
        assert_eq!(order_len(&large), t.train.len());
        // Beyond-dataset clients derive empty shards rather than panicking.
        assert_eq!(large.shard_len(99_999), 0);
        assert!(large.shard(&t.train, 99_999).is_empty());
    }
}
