//! Client data partitioners (paper Appendix D).
//!
//! * **IID**: "training samples for each label are shuffled and then
//!   distributed equally to all clients" — every client sees every label.
//! * **Extreme non-IID**: equal-size shards, each client holds only
//!   `labels_per_client` (= 2) labels, with the paper's special guarantee
//!   that the *honest* clients as a whole cover all labels.
//! * **Dirichlet-α**: the benchmark-suite heterogeneity dial — per label,
//!   client proportions drawn from `Dirichlet(α)`; α → ∞ approaches IID,
//!   small α concentrates each label on few clients.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::rng::derive_seed;

/// The IID *deal order*: per-label shuffle, concatenated in cursor order.
/// Client `c` of an `n`-client IID partition owns exactly the positions
/// `p ≡ c (mod n)` of this sequence, so the deal order is a complete,
/// client-count-independent description of every IID partition of `data`
/// under `seed` — the lazy [`crate::population::ClientPopulation`] stores
/// it once (O(dataset), not O(n·shard)) and derives any client's shard on
/// demand.
pub fn iid_deal_order(data: &Dataset, seed: u64) -> Vec<usize> {
    assert!(!data.is_empty(), "cannot partition empty dataset");
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x11D));
    let mut order = Vec::with_capacity(data.len());
    for mut group in data.indices_by_label() {
        group.shuffle(&mut rng);
        order.extend(group);
    }
    order
}

/// IID partition: per-label shuffle, then round-robin deal to clients so
/// each client receives a near-equal, label-balanced shard.
pub fn iid_partition(data: &Dataset, n_clients: usize, seed: u64) -> Vec<Dataset> {
    assert!(n_clients > 0, "need at least one client");
    let order = iid_deal_order(data, seed);
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (cursor, idx) in order.into_iter().enumerate() {
        assignments[cursor % n_clients].push(idx);
    }
    assignments.iter().map(|a| data.subset(a)).collect()
}

/// Extreme non-IID partition with the honest-coverage guarantee.
///
/// Each label's samples are split into near-equal shards so that the
/// total shard count is `n_clients · labels_per_client`; every client
/// receives exactly `labels_per_client` shards and therefore holds at
/// most that many distinct labels. The paper's guarantee — *honest*
/// clients together cover all labels — is enforced constructively:
/// the first `⌈k / labels_per_client⌉` honest clients are *anchors*, and
/// anchor `i` receives one shard of each label in
/// `{i·lpc, …, i·lpc + lpc − 1}`. All remaining shards are shuffled and
/// dealt to the remaining clients.
///
/// # Panics
/// If honest clients cannot possibly cover all classes
/// (`#honest · labels_per_client < num_classes`) — the paper's evaluation
/// never enters that regime (it stops at 65 % malicious) — or the dataset
/// is too small for one shard per label slot.
pub fn noniid_partition(
    data: &Dataset,
    n_clients: usize,
    labels_per_client: usize,
    malicious: &[bool],
    seed: u64,
) -> Vec<Dataset> {
    noniid_assignments(data, n_clients, labels_per_client, malicious, seed)
        .iter()
        .map(|a| data.subset(a))
        .collect()
}

/// Index-level form of [`noniid_partition`]: each client's sample indices
/// in materialization order (anchor shards first, then leftover pops).
/// `noniid_partition` is exactly `subset` over these lists; the lazy
/// population stores them in CSR form and derives shards on demand.
pub fn noniid_assignments(
    data: &Dataset,
    n_clients: usize,
    labels_per_client: usize,
    malicious: &[bool],
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert_eq!(malicious.len(), n_clients, "malicious mask length mismatch");
    assert!(labels_per_client > 0);
    let k = data.num_classes();
    let lpc = labels_per_client;
    let honest_count = malicious.iter().filter(|m| !**m).count();
    assert!(
        honest_count * lpc >= k,
        "honest clients ({honest_count} × {lpc} labels) cannot cover {k} classes"
    );
    let n_shards = n_clients * lpc;
    assert!(n_shards >= k, "need at least one shard per label");

    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x2012));

    // Per-label shard quotas: base + 1 for the first (n_shards mod k).
    let base = n_shards / k;
    let mut by_label = data.indices_by_label();
    for g in by_label.iter_mut() {
        g.shuffle(&mut rng);
    }
    // shards_of_label[ℓ] = list of index-slices for label ℓ.
    let mut shards_of_label: Vec<Vec<Vec<usize>>> = Vec::with_capacity(k);
    for (l, group) in by_label.iter().enumerate() {
        let quota = base + usize::from(l < n_shards % k);
        assert!(
            !group.is_empty() || quota == 0,
            "label {l} has no samples to shard"
        );
        let mut shards = Vec::with_capacity(quota);
        let per = group.len() / quota;
        let extra = group.len() % quota;
        let mut start = 0;
        for s in 0..quota {
            let size = per + usize::from(s < extra);
            shards.push(group[start..start + size].to_vec());
            start += size;
        }
        shards_of_label.push(shards);
    }

    // Assignments: client -> list of shards (each a Vec of indices).
    let mut assigned: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_clients];
    let honest_ids: Vec<usize> = (0..n_clients).filter(|c| !malicious[*c]).collect();
    let n_anchors = k.div_ceil(lpc);

    // Anchors: one shard of each label in the anchor's label window.
    for (a, &client) in honest_ids.iter().take(n_anchors).enumerate() {
        for shards in &mut shards_of_label[(a * lpc)..((a + 1) * lpc).min(k)] {
            let shard = shards.pop().expect("quota >= 1 per label");
            assigned[client].push(shard);
        }
    }

    // Leftover shards, shuffled; label-grouped pops keep a client's shards
    // adjacent in label where possible but any deal preserves the ≤ lpc
    // distinct-labels bound because each client gets exactly lpc shards.
    let mut leftovers: Vec<Vec<usize>> = shards_of_label.into_iter().flatten().collect();
    leftovers.shuffle(&mut rng);
    for client_shards in &mut assigned {
        while client_shards.len() < lpc {
            client_shards.push(leftovers.pop().expect("shard accounting broke"));
        }
    }
    assert!(leftovers.is_empty(), "unassigned shards remain");

    // Flatten each client's shards in assignment order; `subset` over the
    // flat list gathers the same rows in the same order a per-shard push
    // loop would.
    assigned
        .into_iter()
        .map(|shards| shards.into_iter().flatten().collect())
        .collect()
}

/// RNG stream tag for the Dirichlet partitioner (distinct from the IID
/// `0x11D` and non-IID `0x2012` streams; re-draw attempt `a` salts the
/// tag so each attempt is an independent stream).
const DIRICHLET_TAG: u64 = 0xD112;

/// Re-draw budget for [`dirichlet_partition`] before giving up on a
/// usable draw (all clients non-empty, honest clients covering all
/// labels).
const DIRICHLET_MAX_ATTEMPTS: u64 = 32;

/// Dirichlet-α non-IID partition (Hsu et al.; the heterogeneity dial of
/// the Blades / ByzFL benchmark suites).
///
/// For every label, client shares are drawn from a symmetric
/// `Dirichlet(α)` and the label's shuffled samples are dealt by largest
/// remainder. Small `α` (0.1) concentrates each label on a handful of
/// clients; large `α` (100) approaches the IID deal.
///
/// A draw is **usable** when every client received at least one sample
/// and the honest clients together cover all labels (the same guarantee
/// [`noniid_partition`] enforces constructively). Unusable draws are
/// re-drawn from a fresh attempt-salted RNG stream — the fallback
/// re-draw — up to [`DIRICHLET_MAX_ATTEMPTS`] times; determinism is
/// preserved because the attempt index is part of the stream seed.
///
/// # Panics
/// If `alpha` is not finite-positive, the mask length mismatches, no
/// honest client exists, the dataset is smaller than the client count,
/// or no usable draw is found within the attempt budget (practically
/// reachable only with adversarially tiny datasets).
pub fn dirichlet_partition(
    data: &Dataset,
    n_clients: usize,
    alpha: f64,
    malicious: &[bool],
    seed: u64,
) -> Vec<Dataset> {
    dirichlet_assignments(data, n_clients, alpha, malicious, seed)
        .iter()
        .map(|a| data.subset(a))
        .collect()
}

/// Index-level form of [`dirichlet_partition`]: each client's sample
/// indices in deal order. The usability check (all clients non-empty,
/// honest label coverage) runs on the index lists, so the function is
/// draw-for-draw identical to materializing and checking datasets.
pub fn dirichlet_assignments(
    data: &Dataset,
    n_clients: usize,
    alpha: f64,
    malicious: &[bool],
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    assert_eq!(malicious.len(), n_clients, "malicious mask length mismatch");
    assert!(!data.is_empty(), "cannot partition empty dataset");
    assert!(
        data.len() >= n_clients,
        "fewer samples than clients ({} < {n_clients})",
        data.len()
    );
    let k = data.num_classes();
    let honest: Vec<usize> = (0..n_clients).filter(|c| !malicious[*c]).collect();
    assert!(!honest.is_empty(), "need at least one honest client");

    for attempt in 0..DIRICHLET_MAX_ATTEMPTS {
        let mut rng =
            StdRng::seed_from_u64(derive_seed(seed, DIRICHLET_TAG.wrapping_add(attempt << 16)));
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
        for mut group in data.indices_by_label() {
            group.shuffle(&mut rng);
            let shares = dirichlet_shares(&mut rng, alpha, n_clients);
            let counts = largest_remainder(&shares, group.len());
            let mut start = 0;
            for (client, &count) in counts.iter().enumerate() {
                assignments[client].extend_from_slice(&group[start..start + count]);
                start += count;
            }
        }
        let usable = assignments.iter().all(|a| !a.is_empty()) && {
            let mut seen = vec![false; k];
            for &c in &honest {
                for &i in &assignments[c] {
                    seen[data.y(i) as usize] = true;
                }
            }
            seen.iter().all(|s| *s)
        };
        if usable {
            return assignments;
        }
    }
    panic!(
        "no usable Dirichlet(α = {alpha}) draw in {DIRICHLET_MAX_ATTEMPTS} attempts \
         (n_clients = {n_clients}, samples = {})",
        data.len()
    );
}

/// One symmetric `Dirichlet(α)` draw over `n` categories: normalized
/// `Gamma(α, 1)` samples.
fn dirichlet_shares(rng: &mut StdRng, alpha: f64, n: usize) -> Vec<f64> {
    let mut shares: Vec<f64> = (0..n).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = shares.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Numerically degenerate draw (all gammas underflowed at tiny α):
        // fall back to uniform; the caller's usability check still runs.
        shares.iter_mut().for_each(|s| *s = 1.0 / n as f64);
    } else {
        shares.iter_mut().for_each(|s| *s /= sum);
    }
    shares
}

/// `Gamma(shape, 1)` via Marsaglia–Tsang squeeze (shape ≥ 1) with the
/// `Gamma(shape+1) · U^{1/shape}` boost below 1. Hand-rolled because the
/// vendored `rand` carries no distribution crate.
fn gamma_sample(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal_f64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Standard normal via Box–Muller in f64 (the tensor helper is f32).
fn standard_normal_f64(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Integer apportionment of `total` by `shares` (largest remainder,
/// index tie-break): deterministic, sums exactly to `total`.
fn largest_remainder(shares: &[f64], total: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = shares.iter().map(|s| (s * total as f64) as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|a, b| {
        let fa = shares[*a] * total as f64 - counts[*a] as f64;
        let fb = shares[*b] * total as f64 - counts[*b] as f64;
        fb.total_cmp(&fa).then(a.cmp(b))
    });
    for &i in order.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

/// True when the union of the given clients' datasets covers every class.
pub fn covers_all_labels(shards: &[Dataset], clients: &[usize], num_classes: usize) -> bool {
    let mut seen = vec![false; num_classes];
    for &c in clients {
        for l in shards[c].present_labels() {
            seen[l as usize] = true;
        }
    }
    seen.iter().all(|s| *s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SyntheticDigits};

    fn task() -> SyntheticDigits {
        SyntheticDigits::generate(&SynthConfig {
            train_samples: 6_400,
            test_samples: 100,
            ..SynthConfig::tiny()
        })
    }

    #[test]
    fn iid_sizes_are_near_equal() {
        let t = task();
        let parts = iid_partition(&t.train, 64, 1);
        assert_eq!(parts.len(), 64);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, t.train.len());
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(max - min <= 10, "IID sizes spread too wide: {min}..{max}");
    }

    #[test]
    fn iid_clients_see_all_labels() {
        let t = task();
        let parts = iid_partition(&t.train, 64, 1);
        for p in &parts {
            assert_eq!(p.present_labels().len(), 10);
        }
    }

    #[test]
    fn iid_deterministic() {
        let t = task();
        let a = iid_partition(&t.train, 8, 7);
        let b = iid_partition(&t.train, 8, 7);
        assert_eq!(a[0].labels(), b[0].labels());
    }

    #[test]
    fn noniid_two_labels_per_client() {
        let t = task();
        let malicious = vec![false; 64];
        let parts = noniid_partition(&t.train, 64, 2, &malicious, 3);
        for (i, p) in parts.iter().enumerate() {
            let l = p.present_labels().len();
            assert!(l <= 2, "client {i} has {l} labels");
            assert!(!p.is_empty());
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, t.train.len());
    }

    #[test]
    fn noniid_honest_coverage_even_at_65_percent_malicious() {
        let t = task();
        let n = 64usize;
        let n_bad = 42; // 65.6 %
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(n_bad) {
            *m = true;
        }
        let parts = noniid_partition(&t.train, n, 2, &malicious, 5);
        let honest: Vec<usize> = (0..n).filter(|c| !malicious[*c]).collect();
        assert!(covers_all_labels(&parts, &honest, 10));
    }

    #[test]
    fn noniid_honest_coverage_random_masks() {
        let t = task();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut malicious = vec![false; 64];
            // random ~50 %
            for m in malicious.iter_mut() {
                *m = rand::Rng::gen_bool(&mut rng, 0.5);
            }
            if malicious.iter().filter(|m| !**m).count() * 2 < 10 {
                continue;
            }
            let parts = noniid_partition(&t.train, 64, 2, &malicious, seed);
            let honest: Vec<usize> = (0..64).filter(|c| !malicious[*c]).collect();
            assert!(
                covers_all_labels(&parts, &honest, 10),
                "coverage failed at seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn impossible_coverage_panics() {
        let t = task();
        let mut malicious = vec![true; 64];
        malicious[0] = false; // one honest client, 2 labels < 10 classes
        noniid_partition(&t.train, 64, 2, &malicious, 1);
    }

    #[test]
    fn dirichlet_conserves_samples_and_covers() {
        let t = task();
        let malicious = vec![false; 32];
        let parts = dirichlet_partition(&t.train, 32, 0.3, &malicious, 11);
        assert_eq!(parts.len(), 32);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, t.train.len());
        assert!(parts.iter().all(|p| !p.is_empty()));
        let honest: Vec<usize> = (0..32).collect();
        assert!(covers_all_labels(&parts, &honest, 10));
    }

    #[test]
    fn dirichlet_deterministic_per_seed() {
        let t = task();
        let malicious = vec![false; 16];
        let a = dirichlet_partition(&t.train, 16, 0.5, &malicious, 21);
        let b = dirichlet_partition(&t.train, 16, 0.5, &malicious, 21);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
        let c = dirichlet_partition(&t.train, 16, 0.5, &malicious, 22);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.labels() != y.labels()),
            "different seeds should shuffle differently"
        );
    }

    #[test]
    fn small_alpha_is_more_skewed_than_large_alpha() {
        let t = task();
        let malicious = vec![false; 16];
        // Mean distinct-labels-per-client: concentration shrinks it.
        let mean_labels = |alpha: f64| -> f64 {
            let parts = dirichlet_partition(&t.train, 16, alpha, &malicious, 31);
            parts
                .iter()
                .map(|p| p.present_labels().len() as f64)
                .sum::<f64>()
                / 16.0
        };
        let skewed = mean_labels(0.1);
        let near_iid = mean_labels(100.0);
        assert!(
            skewed + 1.0 < near_iid,
            "α=0.1 ({skewed}) should be visibly more skewed than α=100 ({near_iid})"
        );
        assert!(near_iid > 9.0, "α=100 approaches the IID deal");
    }

    #[test]
    fn dirichlet_redraw_rescues_tight_draws() {
        // 50 samples over 10 clients at a tiny α: single draws routinely
        // leave a client empty, so success implies the re-draw loop ran
        // (and stayed deterministic).
        let t = SyntheticDigits::generate(&SynthConfig {
            train_samples: 50,
            test_samples: 10,
            ..SynthConfig::tiny()
        });
        let malicious = vec![false; 10];
        let a = dirichlet_partition(&t.train, 10, 0.05, &malicious, 3);
        let b = dirichlet_partition(&t.train, 10, 0.05, &malicious, 3);
        assert!(a.iter().all(|p| !p.is_empty()));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dirichlet_rejects_bad_alpha() {
        let t = task();
        dirichlet_partition(&t.train, 8, 0.0, &[false; 8], 1);
    }

    #[test]
    fn gamma_sampler_matches_moments() {
        // E[Gamma(a,1)] = a, Var = a: check to ~5 % over 20k draws.
        for a in [0.3f64, 1.0, 2.5, 8.0] {
            let mut rng = StdRng::seed_from_u64(77);
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| gamma_sample(&mut rng, a)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            assert!((mean - a).abs() / a < 0.05, "Gamma({a}) mean off: {mean}");
            assert!(xs.iter().all(|x| *x >= 0.0 && x.is_finite()));
        }
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        let shares = [0.205, 0.205, 0.205, 0.205, 0.18];
        let counts = largest_remainder(&shares, 997);
        assert_eq!(counts.iter().sum::<usize>(), 997);
        let uniform = largest_remainder(&[0.25; 4], 10);
        assert_eq!(uniform.iter().sum::<usize>(), 10);
        assert!(uniform.iter().all(|c| *c == 2 || *c == 3));
    }
}
