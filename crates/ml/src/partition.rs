//! Client data partitioners (paper Appendix D).
//!
//! * **IID**: "training samples for each label are shuffled and then
//!   distributed equally to all clients" — every client sees every label.
//! * **Extreme non-IID**: equal-size shards, each client holds only
//!   `labels_per_client` (= 2) labels, with the paper's special guarantee
//!   that the *honest* clients as a whole cover all labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::rng::derive_seed;

/// IID partition: per-label shuffle, then round-robin deal to clients so
/// each client receives a near-equal, label-balanced shard.
pub fn iid_partition(data: &Dataset, n_clients: usize, seed: u64) -> Vec<Dataset> {
    assert!(n_clients > 0, "need at least one client");
    assert!(!data.is_empty(), "cannot partition empty dataset");
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x11D));
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    let mut cursor = 0usize;
    for mut group in data.indices_by_label() {
        group.shuffle(&mut rng);
        for idx in group {
            assignments[cursor % n_clients].push(idx);
            cursor += 1;
        }
    }
    assignments.iter().map(|a| data.subset(a)).collect()
}

/// Extreme non-IID partition with the honest-coverage guarantee.
///
/// Each label's samples are split into near-equal shards so that the
/// total shard count is `n_clients · labels_per_client`; every client
/// receives exactly `labels_per_client` shards and therefore holds at
/// most that many distinct labels. The paper's guarantee — *honest*
/// clients together cover all labels — is enforced constructively:
/// the first `⌈k / labels_per_client⌉` honest clients are *anchors*, and
/// anchor `i` receives one shard of each label in
/// `{i·lpc, …, i·lpc + lpc − 1}`. All remaining shards are shuffled and
/// dealt to the remaining clients.
///
/// # Panics
/// If honest clients cannot possibly cover all classes
/// (`#honest · labels_per_client < num_classes`) — the paper's evaluation
/// never enters that regime (it stops at 65 % malicious) — or the dataset
/// is too small for one shard per label slot.
pub fn noniid_partition(
    data: &Dataset,
    n_clients: usize,
    labels_per_client: usize,
    malicious: &[bool],
    seed: u64,
) -> Vec<Dataset> {
    assert!(n_clients > 0, "need at least one client");
    assert_eq!(malicious.len(), n_clients, "malicious mask length mismatch");
    assert!(labels_per_client > 0);
    let k = data.num_classes();
    let lpc = labels_per_client;
    let honest_count = malicious.iter().filter(|m| !**m).count();
    assert!(
        honest_count * lpc >= k,
        "honest clients ({honest_count} × {lpc} labels) cannot cover {k} classes"
    );
    let n_shards = n_clients * lpc;
    assert!(n_shards >= k, "need at least one shard per label");

    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x2012));

    // Per-label shard quotas: base + 1 for the first (n_shards mod k).
    let base = n_shards / k;
    let mut by_label = data.indices_by_label();
    for g in by_label.iter_mut() {
        g.shuffle(&mut rng);
    }
    // shards_of_label[ℓ] = list of index-slices for label ℓ.
    let mut shards_of_label: Vec<Vec<Vec<usize>>> = Vec::with_capacity(k);
    for (l, group) in by_label.iter().enumerate() {
        let quota = base + usize::from(l < n_shards % k);
        assert!(
            !group.is_empty() || quota == 0,
            "label {l} has no samples to shard"
        );
        let mut shards = Vec::with_capacity(quota);
        let per = group.len() / quota;
        let extra = group.len() % quota;
        let mut start = 0;
        for s in 0..quota {
            let size = per + usize::from(s < extra);
            shards.push(group[start..start + size].to_vec());
            start += size;
        }
        shards_of_label.push(shards);
    }

    // Assignments: client -> list of shards (each a Vec of indices).
    let mut assigned: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_clients];
    let honest_ids: Vec<usize> = (0..n_clients).filter(|c| !malicious[*c]).collect();
    let n_anchors = k.div_ceil(lpc);

    // Anchors: one shard of each label in the anchor's label window.
    for (a, &client) in honest_ids.iter().take(n_anchors).enumerate() {
        for shards in &mut shards_of_label[(a * lpc)..((a + 1) * lpc).min(k)] {
            let shard = shards.pop().expect("quota >= 1 per label");
            assigned[client].push(shard);
        }
    }

    // Leftover shards, shuffled; label-grouped pops keep a client's shards
    // adjacent in label where possible but any deal preserves the ≤ lpc
    // distinct-labels bound because each client gets exactly lpc shards.
    let mut leftovers: Vec<Vec<usize>> = shards_of_label.into_iter().flatten().collect();
    leftovers.shuffle(&mut rng);
    for client_shards in &mut assigned {
        while client_shards.len() < lpc {
            client_shards.push(leftovers.pop().expect("shard accounting broke"));
        }
    }
    assert!(leftovers.is_empty(), "unassigned shards remain");

    // Materialize datasets.
    assigned
        .into_iter()
        .map(|shards| {
            let mut ds = Dataset::empty(data.dim(), k);
            for shard in shards {
                for i in shard {
                    ds.push(data.x(i), data.y(i));
                }
            }
            ds
        })
        .collect()
}

/// True when the union of the given clients' datasets covers every class.
pub fn covers_all_labels(shards: &[Dataset], clients: &[usize], num_classes: usize) -> bool {
    let mut seen = vec![false; num_classes];
    for &c in clients {
        for l in shards[c].present_labels() {
            seen[l as usize] = true;
        }
    }
    seen.iter().all(|s| *s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SyntheticDigits};

    fn task() -> SyntheticDigits {
        SyntheticDigits::generate(&SynthConfig {
            train_samples: 6_400,
            test_samples: 100,
            ..SynthConfig::tiny()
        })
    }

    #[test]
    fn iid_sizes_are_near_equal() {
        let t = task();
        let parts = iid_partition(&t.train, 64, 1);
        assert_eq!(parts.len(), 64);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, t.train.len());
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(max - min <= 10, "IID sizes spread too wide: {min}..{max}");
    }

    #[test]
    fn iid_clients_see_all_labels() {
        let t = task();
        let parts = iid_partition(&t.train, 64, 1);
        for p in &parts {
            assert_eq!(p.present_labels().len(), 10);
        }
    }

    #[test]
    fn iid_deterministic() {
        let t = task();
        let a = iid_partition(&t.train, 8, 7);
        let b = iid_partition(&t.train, 8, 7);
        assert_eq!(a[0].labels(), b[0].labels());
    }

    #[test]
    fn noniid_two_labels_per_client() {
        let t = task();
        let malicious = vec![false; 64];
        let parts = noniid_partition(&t.train, 64, 2, &malicious, 3);
        for (i, p) in parts.iter().enumerate() {
            let l = p.present_labels().len();
            assert!(l <= 2, "client {i} has {l} labels");
            assert!(!p.is_empty());
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, t.train.len());
    }

    #[test]
    fn noniid_honest_coverage_even_at_65_percent_malicious() {
        let t = task();
        let n = 64usize;
        let n_bad = 42; // 65.6 %
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(n_bad) {
            *m = true;
        }
        let parts = noniid_partition(&t.train, n, 2, &malicious, 5);
        let honest: Vec<usize> = (0..n).filter(|c| !malicious[*c]).collect();
        assert!(covers_all_labels(&parts, &honest, 10));
    }

    #[test]
    fn noniid_honest_coverage_random_masks() {
        let t = task();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut malicious = vec![false; 64];
            // random ~50 %
            for m in malicious.iter_mut() {
                *m = rand::Rng::gen_bool(&mut rng, 0.5);
            }
            if malicious.iter().filter(|m| !**m).count() * 2 < 10 {
                continue;
            }
            let parts = noniid_partition(&t.train, 64, 2, &malicious, seed);
            let honest: Vec<usize> = (0..64).filter(|c| !malicious[*c]).collect();
            assert!(
                covers_all_labels(&parts, &honest, 10),
                "coverage failed at seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn impossible_coverage_panics() {
        let t = task();
        let mut malicious = vec![true; 64];
        malicious[0] = false; // one honest client, 2 labels < 10 classes
        noniid_partition(&t.train, 64, 2, &malicious, 1);
    }
}
