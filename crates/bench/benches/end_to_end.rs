//! End-to-end benchmark: one full global round (64 clients training +
//! hierarchical aggregation + consensus + evaluation) for ABD-HFL vs the
//! vanilla star — the cost comparison behind Table IV's qualitative
//! "communication cost" column, in compute terms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::runner::{run_prepared, Experiment};
use abd_hfl_core::vanilla::{paper_vanilla_aggregator, run_vanilla_prepared};
use hfl_ml::synth::SynthConfig;

fn one_round_cfg(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::paper_iid(AttackCfg::None, seed);
    cfg.rounds = 1;
    cfg.eval_every = 1;
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 1_000,
        ..SynthConfig::default()
    };
    cfg
}

fn bench_abd_round(c: &mut Criterion) {
    let exp = Experiment::prepare(&one_round_cfg(1));
    c.bench_function("abd_hfl_one_round", |b| {
        b.iter(|| black_box(run_prepared(&exp)))
    });
}

fn bench_vanilla_round(c: &mut Criterion) {
    let exp = Experiment::prepare(&one_round_cfg(2));
    c.bench_function("vanilla_one_round", |b| {
        b.iter(|| black_box(run_vanilla_prepared(&exp, paper_vanilla_aggregator(true, 64))))
    });
}

fn bench_client_training_only(c: &mut Criterion) {
    let exp = Experiment::prepare(&one_round_cfg(3));
    let global = exp.template.params().to_vec();
    c.bench_function("train_64_clients_parallel", |b| {
        b.iter(|| black_box(exp.train_round(&global, 0)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_abd_round, bench_vanilla_round, bench_client_training_only
);
criterion_main!(benches);
