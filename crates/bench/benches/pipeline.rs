//! Benchmarks the discrete-event engine itself (events/second on the
//! paper topology) and the pipeline driver end to end for a short run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::pipeline::PipelineConfig;
use abd_hfl_core::run::RunOptions;
use hfl_ml::synth::SynthConfig;
use hfl_simnet::engine::{Actor, Ctx, NodeId, Simulation};
use hfl_simnet::DelayModel;

/// A token-ring actor: engine overhead measurement with trivial handlers.
struct Ring {
    next: NodeId,
    hops_left: u32,
}

impl Actor<u32> for Ring {
    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        if ctx.me() == 0 {
            ctx.send(self.next, 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<u32>, _src: NodeId, msg: u32) {
        if self.hops_left == 0 {
            ctx.stop();
        } else {
            self.hops_left -= 1;
            ctx.send(self.next, msg + 1);
        }
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let n = 64;
            let actors: Vec<Ring> = (0..n)
                .map(|i| Ring {
                    next: (i + 1) % n,
                    hops_left: 100_000 / n as u32,
                })
                .collect();
            let mut sim = Simulation::new(
                actors,
                DelayModel::Uniform { lo: 1, hi: 100 },
                7,
                |_| 4,
            );
            black_box(sim.run(200_000))
        })
    });
}

fn bench_pipeline_round(c: &mut Criterion) {
    let mut cfg = HflConfig::quick(AttackCfg::None, 5);
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 500,
        ..SynthConfig::default()
    };
    let pcfg = PipelineConfig {
        rounds: 2,
        ..PipelineConfig::default()
    };
    c.bench_function("pipeline_2_rounds_64_clients", |b| {
        b.iter(|| black_box(RunOptions::pipeline(&pcfg).run(&cfg).into_pipeline().0))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput, bench_pipeline_round
);
criterion_main!(benches);
