//! Benchmarks the consensus mechanisms (Table II, CBA rows): decision
//! latency and the reported message/byte cost at the paper's top-level
//! size (n = 4) and larger committees.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_consensus::{ConsensusKind, DistanceEvaluator};
use hfl_tensor::init;

const D: usize = 650;

fn proposals(n: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            let mut v = vec![0.0f32; D];
            init::gaussian(&mut rng, 0.0, 0.1, &mut v);
            v
        })
        .collect()
}

fn kinds() -> Vec<(&'static str, ConsensusKind)> {
    vec![
        ("vote-majority", ConsensusKind::VoteMajority),
        (
            "committee",
            ConsensusKind::Committee {
                size: 3,
                exclude: 1,
            },
        ),
        ("pbft", ConsensusKind::Pbft),
        (
            "approx-agreement",
            ConsensusKind::Approx {
                epsilon: 1e-3,
                trim: 1,
            },
        ),
    ]
}

fn bench_consensus(c: &mut Criterion) {
    for n in [4usize, 16] {
        let props = proposals(n);
        let refs: Vec<&[f32]> = props.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&props);
        let byz = vec![false; n];
        let mut g = c.benchmark_group(format!("consensus_n{n}_d{D}"));
        for (name, kind) in kinds() {
            let mech = kind.build();
            g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    mech.decide(black_box(&refs), &byz, &eval, &mut rng)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
