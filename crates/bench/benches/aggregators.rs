//! Benchmarks every Byzantine-robust aggregation rule (Table II) across
//! the two input shapes of the evaluation: a cluster (n = 4) and the
//! vanilla star (n = 64), at the linear-model dimension.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_robust::AggregatorKind;
use hfl_tensor::init;

const D: usize = 650;

fn make_updates(n: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n)
        .map(|_| {
            let mut v = vec![0.0f32; D];
            init::gaussian(&mut rng, 0.0, 1.0, &mut v);
            v
        })
        .collect()
}

fn kinds(n: usize) -> Vec<(&'static str, AggregatorKind)> {
    let f = (n / 4).max(1);
    vec![
        ("fedavg", AggregatorKind::FedAvg),
        ("krum", AggregatorKind::Krum { f }),
        ("multi-krum", AggregatorKind::MultiKrum { f, m: n - f }),
        ("median", AggregatorKind::Median),
        ("trimmed-mean", AggregatorKind::TrimmedMean { ratio: 0.25 }),
        ("geomed", AggregatorKind::GeoMed),
        (
            "centered-clip",
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
        ),
        (
            "cosine-clustering",
            AggregatorKind::CosineClustering { threshold: 0.0 },
        ),
    ]
}

fn bench_aggregators(c: &mut Criterion) {
    for n in [4usize, 64] {
        let updates = make_updates(n);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mut g = c.benchmark_group(format!("aggregate_n{n}_d{D}"));
        for (name, kind) in kinds(n) {
            let agg = kind.build();
            g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| agg.aggregate(black_box(&refs), None))
            });
        }
        g.finish();
    }
}

/// Krum's O(n²·d) distance matrix is the scaling bottleneck; sweep n.
fn bench_krum_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("krum_scaling_d650");
    for n in [8usize, 16, 32, 64, 128] {
        let updates = make_updates(n);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let agg = AggregatorKind::Krum { f: n / 4 }.build();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| agg.aggregate(black_box(&refs), None))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aggregators, bench_krum_scaling);
criterion_main!(benches);
