//! Micro-benchmarks for the hot tensor kernels (axpy, dot, distance,
//! coordinate statistics) across the dimensions the system actually uses:
//! 650 (linear model), ~4k (small MLP), 65k (a larger model).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_tensor::{init, ops, stats};

const DIMS: [usize; 3] = [650, 4_096, 65_536];

fn make_vec(d: usize, seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; d];
    init::gaussian(&mut StdRng::seed_from_u64(seed), 0.0, 1.0, &mut v);
    v
}

fn bench_axpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("axpy");
    for d in DIMS {
        let x = make_vec(d, 1);
        let mut y = make_vec(d, 2);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| ops::axpy(black_box(0.5), black_box(&x), black_box(&mut y)))
        });
    }
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    for d in DIMS {
        let x = make_vec(d, 3);
        let y = make_vec(d, 4);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| ops::dot(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn bench_dist_sq(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist_sq");
    for d in DIMS {
        let x = make_vec(d, 5);
        let y = make_vec(d, 6);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| ops::dist_sq(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn bench_coordinate_median(c: &mut Criterion) {
    let mut g = c.benchmark_group("coordinate_median_n64");
    for d in [650usize, 4_096] {
        let rows: Vec<Vec<f32>> = (0..64).map(|i| make_vec(d, 100 + i)).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0.0f32; d];
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| stats::coordinate_median(black_box(&refs), black_box(&mut out)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_axpy,
    bench_dot,
    bench_dist_sq,
    bench_coordinate_median
);
criterion_main!(benches);
