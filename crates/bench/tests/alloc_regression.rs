//! The steady-state allocation gate: after a short warmup, a
//! synchronous BRA round performs **zero heap allocations** — the
//! engine's workspace arena, the aggregator scratch, and the training
//! loop's reusable model/SGD buffers absorb every per-round need.
//!
//! The gate drives [`RoundEngine::run_round_into`] directly (the
//! harness loop in `run_prepared` allocates for manifests and metrics
//! by design) under the counting allocator, on two fixtures:
//!
//! * **clean** — the fault-free synchronous path;
//! * **faulted** — a crash (with recovery), a leader kill, a healing
//!   partition and a bounded straggler window, all confined to the
//!   warmup rounds. Steady-state rounds then run the fault layer's
//!   queries (crash masks, partition checks, straggle factors) without
//!   any fault *activity*, which must stay allocation-free too.
//!
//! Threads are pinned to 1: spawning workers allocates stacks, so the
//! zero-allocation invariant is a property of the sequential execution
//! form (results are byte-identical at any thread count — the
//! work-stealing determinism contract, DESIGN.md §15).
//!
//! Both fixtures run inside ONE `#[test]`: the allocation counter is
//! process-global, so a concurrently running test would bleed its
//! allocations into the steady-state window.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::engine::cost::CostCounters;
use abd_hfl_core::engine::RoundEngine;
use abd_hfl_core::runner::Experiment;
use hfl_bench::memprobe::{alloc_count, CountingAlloc};
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;
use hfl_telemetry::Telemetry;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP: usize = 5;
const STEADY: usize = 20;

/// A small all-BRA fixture. The CBA vote path builds its consensus
/// mechanism per decision by design, so the zero-allocation invariant
/// is pinned on the Byzantine-robust averaging path — the hot loop the
/// paper's experiments spend their time in.
fn bra_fixture(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.rounds = WARMUP + STEADY;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    for level in cfg.levels.iter_mut() {
        *level = LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 });
    }
    cfg
}

/// The clean fixture plus a fault schedule whose every window opens
/// *and heals* inside warmup, leaving steady-state rounds with a quiet
/// (but active and querying) fault layer.
fn faulted_fixture(seed: u64) -> HflConfig {
    let mut cfg = bra_fixture(seed);
    let split: Vec<usize> = (0..24).collect();
    let rest: Vec<usize> = (24..64).collect();
    cfg.faults = Some(
        FaultPlan::new()
            .crash_recover(1, 3, 4)
            .kill_leader(2, 2, 1, Some(4))
            .partition(1, vec![split, rest], 3)
            .straggler(1, 6, 8.0, Some(4)),
    );
    cfg
}

/// Runs the fixture round by round and asserts every post-warmup round
/// allocates exactly zero times.
fn assert_steady_rounds_alloc_free(name: &str, cfg: &HflConfig) {
    let exp = Experiment::prepare(cfg);
    let telem = Telemetry::disabled();
    let mut engine = RoundEngine::for_experiment(&exp);
    let mut global = exp.template.params().to_vec();
    let mut next_global = Vec::with_capacity(global.len());
    let mut cost = CostCounters::default();
    let mut fault_log = Vec::new();
    let mut susp_log = Vec::new();
    for round in 0..cfg.rounds {
        fault_log.clear();
        let before = alloc_count();
        engine.run_round_into(
            &global,
            round,
            &mut cost,
            &telem,
            &mut fault_log,
            &mut susp_log,
            &mut next_global,
        );
        std::mem::swap(&mut global, &mut next_global);
        let allocs = alloc_count() - before;
        if round >= WARMUP {
            assert_eq!(
                allocs, 0,
                "{name}: steady-state round {round} performed {allocs} heap \
                 allocations (warmup = {WARMUP} rounds)"
            );
        }
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    hfl_parallel::set_default_threads(1);
    assert_steady_rounds_alloc_free("clean", &bra_fixture(11));
    assert_steady_rounds_alloc_free("faulted", &faulted_fixture(12));
    hfl_parallel::set_default_threads(0);
}
