//! # hfl-bench
//!
//! Experiment harness reproducing every table and figure of the ABD-HFL
//! paper's evaluation (see DESIGN.md §3 for the experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `repro_table5` | Table V — final test accuracy grid |
//! | `repro_fig3` | Figure 3 — convergence curves with confidence bands |
//! | `repro_tolerance` | Theorem 2 / Corollary 3 — tolerance bounds vs. empirical |
//! | `repro_schemes` | Tables III–IV — the four scheme combinations |
//! | `repro_efficiency` | §III-D / Fig. 2 — pipeline efficiency indicator ν |
//! | `repro_attacks` | Table I — per-attack damage under plain averaging |
//! | `repro_defenses` | Table II — per-defense robustness head-to-head |
//! | `repro_faults` | Fault tolerance — availability/accuracy under crash faults × quorum φ |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! All binaries accept `--quick` (reduced rounds/repetitions for smoke
//! runs), `--rounds N`, `--reps N`, and `--out DIR` (CSV output
//! directory, default `results/`).

pub mod args;
pub mod ci;
pub mod memprobe;
pub mod report;

pub use args::Args;
pub use ci::Summary;
