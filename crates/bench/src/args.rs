//! Minimal CLI-flag parsing shared by the reproduction binaries (no
//! external dependency; the flags are few and uniform).

/// Common harness options.
#[derive(Clone, Debug)]
pub struct Args {
    /// Reduced rounds/reps for a fast smoke run.
    pub quick: bool,
    /// Override global rounds.
    pub rounds: Option<usize>,
    /// Override repetition count.
    pub reps: Option<usize>,
    /// CSV output directory.
    pub out_dir: String,
    /// Optional substring filter on experiment cells.
    pub filter: Option<String>,
    /// Base seed.
    pub seed: u64,
    /// CI smoke mode for the scale sweep: one mid-size population
    /// instead of the full n ∈ {10³..10⁶} sweep, plus a manifest log
    /// for the same-seed determinism diff.
    pub smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            quick: false,
            rounds: None,
            reps: None,
            out_dir: "results".to_string(),
            filter: None,
            seed: 42,
            smoke: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    /// On malformed flags (the binaries are developer tools; failing fast
    /// beats guessing).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Self::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--quick" => args.quick = true,
                "--smoke" => args.smoke = true,
                "--rounds" => {
                    args.rounds = Some(
                        it.next()
                            .expect("--rounds needs a value")
                            .parse()
                            .expect("--rounds must be an integer"),
                    )
                }
                "--reps" => {
                    args.reps = Some(
                        it.next()
                            .expect("--reps needs a value")
                            .parse()
                            .expect("--reps must be an integer"),
                    )
                }
                "--out" => {
                    args.out_dir = it.next().expect("--out needs a directory");
                }
                "--filter" => {
                    args.filter = Some(it.next().expect("--filter needs a substring"));
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                other => panic!("unknown flag: {other}"),
            }
        }
        args
    }

    /// Effective rounds: explicit override > quick default > full default.
    pub fn effective_rounds(&self, full: usize, quick: usize) -> usize {
        self.rounds.unwrap_or(if self.quick { quick } else { full })
    }

    /// Effective repetitions.
    pub fn effective_reps(&self, full: usize, quick: usize) -> usize {
        self.reps.unwrap_or(if self.quick { quick } else { full })
    }

    /// True when the cell label passes the filter.
    pub fn matches(&self, label: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| label.contains(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert!(!a.quick);
        assert_eq!(a.out_dir, "results");
        assert_eq!(a.effective_rounds(200, 40), 200);
    }

    #[test]
    fn quick_mode() {
        let a = parse("--quick");
        assert_eq!(a.effective_rounds(200, 40), 40);
        assert_eq!(a.effective_reps(5, 2), 2);
    }

    #[test]
    fn smoke_mode() {
        assert!(parse("--smoke").smoke);
        assert!(!parse("--quick").smoke, "smoke is independent of quick");
    }

    #[test]
    fn explicit_overrides() {
        let a = parse("--quick --rounds 7 --reps 3 --seed 9 --out /tmp/x");
        assert_eq!(a.effective_rounds(200, 40), 7);
        assert_eq!(a.effective_reps(5, 2), 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out_dir, "/tmp/x");
    }

    #[test]
    fn filter_matching() {
        let a = parse("--filter type1");
        assert!(a.matches("iid/type1"));
        assert!(!a.matches("iid/type2"));
        assert!(parse("").matches("anything"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse("--wat");
    }
}
