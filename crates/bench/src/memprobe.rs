//! Allocation accounting for the scale benchmarks: a counting
//! [`GlobalAlloc`] wrapper over [`System`] plus a per-round peak probe
//! driving the engine round-by-round.
//!
//! The counters are process-wide statics, so they only observe anything
//! when the *binary* installs the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hfl_bench::memprobe::CountingAlloc = CountingAlloc;
//! ```
//!
//! `repro_scale` uses [`probe_rounds`] to prove the per-round working
//! set depends on the sampled cohort size m, not the population n
//! (DESIGN.md §14); `perf_baseline` reuses it for the
//! `peak_round_bytes` field of `BENCH_9.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use abd_hfl_core::engine::cost::CostCounters;
use abd_hfl_core::engine::RoundEngine;
use abd_hfl_core::runner::Experiment;
use hfl_telemetry::Telemetry;

/// Live heap bytes (allocated − freed) since process start.
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Allocation *events* since process start (a `realloc` that may move
/// counts as one). The engine's steady-state gate asserts this stays
/// flat across a round, which is strictly stronger than flat bytes.
static COUNT: AtomicU64 = AtomicU64::new(0);

/// A [`System`] allocator that keeps live/peak byte counters. Zero
/// branches beyond the null check; the two relaxed atomics cost a few
/// nanoseconds per (de)allocation — noise next to the allocation
/// itself.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (0 unless the binary installed
/// [`CountingAlloc`]).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live count and returns
/// that baseline.
pub fn reset_peak() -> u64 {
    let live = live_bytes();
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Peak bytes above `baseline` since the matching [`reset_peak`].
pub fn peak_since(baseline: u64) -> u64 {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Allocation events since process start (0 unless the binary installed
/// [`CountingAlloc`]). Bracket a region with two reads and subtract to
/// count its allocations — the steady-state gate in
/// `crates/bench/tests/alloc_regression.rs` does exactly that around
/// one engine round.
pub fn alloc_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// What [`probe_rounds`] measured over one manual round loop.
pub struct RoundProbe {
    /// Worst over the probed rounds of (heap high-water mark during the
    /// round − live bytes at its start): the round's transient working
    /// set, excluding whatever the prepared experiment already holds.
    pub peak_round_bytes: u64,
    /// Wall time of the whole loop.
    pub elapsed_secs: f64,
    /// Messages charged by the probed rounds.
    pub messages: u64,
    /// Worst over the probed rounds of the round's allocation-event
    /// count (0 for every steady-state round on the single-threaded
    /// synchronous BRA path once the workspace arena has warmed up).
    pub max_round_allocs: u64,
}

/// Drives `rounds` engine rounds by hand (no eval, telemetry disabled)
/// and records the per-round allocation peak. The peaks are only
/// meaningful when the binary installs [`CountingAlloc`]; the timing is
/// meaningful regardless.
pub fn probe_rounds(exp: &Experiment, rounds: usize) -> RoundProbe {
    probe_rounds_with_warmup(exp, 0, rounds)
}

/// [`probe_rounds`] preceded by `warmup` unrecorded rounds: the peaks
/// and allocation counts cover only rounds `warmup..warmup + rounds`,
/// after the engine's workspace arena has reached its high-water
/// capacity. The steady-state zero-allocation gate measures through
/// here.
pub fn probe_rounds_with_warmup(exp: &Experiment, warmup: usize, rounds: usize) -> RoundProbe {
    assert!(rounds > 0, "cannot probe zero rounds");
    let telem = Telemetry::disabled();
    let mut engine = RoundEngine::for_experiment(exp);
    let mut global = exp.template.params().to_vec();
    let mut next_global = Vec::with_capacity(global.len());
    let mut cost = CostCounters::default();
    let mut fault_log = Vec::new();
    let mut susp_log = Vec::new();
    let mut peak_round_bytes = 0u64;
    let mut max_round_allocs = 0u64;
    let start = Instant::now();
    for round in 0..warmup + rounds {
        fault_log.clear();
        let baseline = reset_peak();
        let allocs_before = alloc_count();
        engine.run_round_into(
            &global,
            round,
            &mut cost,
            &telem,
            &mut fault_log,
            &mut susp_log,
            &mut next_global,
        );
        std::mem::swap(&mut global, &mut next_global);
        if round >= warmup {
            peak_round_bytes = peak_round_bytes.max(peak_since(baseline));
            max_round_allocs = max_round_allocs.max(alloc_count() - allocs_before);
        }
    }
    RoundProbe {
        peak_round_bytes,
        elapsed_secs: start.elapsed().as_secs_f64(),
        messages: cost.messages,
        max_round_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installing the wrapper for the lib test binary only: every test
    // in this crate then runs under counted allocation, which is
    // exactly the production wiring of the scale binaries.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counters_track_a_visible_allocation() {
        let baseline = reset_peak();
        let v: Vec<u8> = vec![7; 1 << 20];
        assert!(
            peak_since(baseline) >= 1 << 20,
            "a 1 MiB allocation must raise the peak"
        );
        drop(v);
        let live_after = live_bytes();
        // The vec is freed: live is back near the baseline (other test
        // threads may allocate concurrently, so only bound it).
        assert!(live_after < baseline + (1 << 20));
    }

    #[test]
    fn peak_resets_to_the_current_live_count() {
        let _big: Vec<u8> = vec![1; 1 << 16];
        let baseline = reset_peak();
        assert_eq!(peak_since(baseline), 0, "fresh baseline has no peak yet");
    }
}
