//! Reproduces the **combined-stress sweep**: the adaptive arms race
//! (adaptive ALIE poisoning + suspicion/quarantine defense, leader
//! equivocation) running *concurrently* with injected infrastructure
//! faults — the composition the `RoundEngine` layer stack makes legal
//! (the old textually-separate round paths rejected faults + arms-race
//! configs outright).
//!
//! Grid (25 % malicious, prefix placement, paper IID ECSM topology —
//! 64 clients in clusters of 4, Multi-Krum f = 1 m = 3 at every level):
//!
//! * fault scenario ∈
//!   * `none` — no injected faults (pure arms-race baseline);
//!   * `crash-f` — 1 follower crash-stopped per bottom cluster at
//!     round 5;
//!   * `leader+f` — a bottom-cluster *leader* killed (deputy
//!     promotion) on top of the follower crashes;
//!   * `partition` — one honest bottom cluster cut off for 3 rounds,
//!     then healed;
//! * suspicion ∈ { off, on } (defaults: decay 0.8, quarantine 2.2).
//!
//! Every cell runs the adaptive ALIE attack plus equivocating malicious
//! leaders, so the defense must convict equivocators and quarantine
//! poisoners *while* the fault layer is promoting deputies and riding
//! out partitions. Availability is `1 − faulted / (clients · rounds)`.
//!
//! Two invocations with the same `--seed` produce byte-identical
//! manifest logs (`combined.manifests.jsonl`) — the determinism
//! contract CI checks by diffing.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_attacks::{AdaptiveAttack, Placement, ProtocolAttack};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_robust::{AggregatorKind, SuspicionConfig};
use hfl_simnet::Hierarchy;
use hfl_telemetry::Telemetry;

/// Malicious fraction: 16 of 64 clients — the first 4 bottom clusters
/// under prefix placement, leaders included (so equivocation bites).
const PROPORTION: f64 = 0.25;

/// The round every scenario's faults strike at.
const FAULT_ROUND: usize = 5;

/// Crash-stops the first follower of every bottom cluster.
fn crash_followers(mut plan: FaultPlan, h: &Hierarchy) -> FaultPlan {
    let bottom = h.bottom_level();
    for cluster in &h.level(bottom).clusters {
        for &m in cluster.members.iter().skip(1).take(1) {
            plan = plan.crash_stop(FAULT_ROUND, m);
        }
    }
    plan
}

/// The fault plan for a named scenario, `None` for the fault-free cell.
fn scenario_plan(name: &str, h: &Hierarchy) -> Option<FaultPlan> {
    match name {
        "none" => None,
        "crash-f" => Some(crash_followers(FaultPlan::new(), h)),
        "leader+f" => Some(crash_followers(
            // Kill the leader of the last (honest, under prefix
            // placement) bottom cluster: its deputy takes over while
            // the suspicion layer is busy convicting equivocators.
            FaultPlan::new().kill_leader(
                FAULT_ROUND,
                h.bottom_level(),
                h.level(h.bottom_level()).clusters.len() - 1,
                None,
            ),
            h,
        )),
        "partition" => {
            // Cut off the last bottom cluster for 3 rounds.
            let members = h
                .level(h.bottom_level())
                .clusters
                .last()
                .expect("bottom level has clusters")
                .members
                .clone();
            Some(FaultPlan::new().partition(FAULT_ROUND, vec![members], FAULT_ROUND + 3))
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

fn base_cfg(seed: u64, rounds: usize) -> HflConfig {
    let agg = AggregatorKind::MultiKrum { f: 1, m: 3 };
    let mut cfg = HflConfig::paper_iid(AttackCfg::None, seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.data = SynthConfig {
        train_samples: 19_200,
        test_samples: 4_000,
        ..SynthConfig::default()
    };
    cfg.levels = vec![
        LevelAgg::Bra(agg.clone()),
        LevelAgg::Bra(agg.clone()),
        LevelAgg::Bra(agg),
    ];
    cfg.attack = AttackCfg::Adaptive {
        attack: AdaptiveAttack::alie_default(),
        proportion: PROPORTION,
        placement: Placement::Prefix,
    };
    cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
    cfg
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(60, 12);

    println!(
        "## Combined stress — faults × suspicion under adaptive ALIE + equivocation \
         ({:.0}% malicious, faults at round {FAULT_ROUND})\n",
        PROPORTION * 100.0
    );

    let scenarios = ["none", "crash-f", "leader+f", "partition"];

    let mut csv = Vec::new();
    let mut manifests = Vec::new();
    let mut rows = Vec::new();
    for scenario in scenarios {
        let mut cells = vec![scenario.to_string()];
        for suspicion in [false, true] {
            let susp_name = if suspicion { "on" } else { "off" };
            let label = format!("{scenario}/susp-{susp_name}");
            if !args.matches(&label) {
                cells.push("—".to_string());
                continue;
            }
            let mut cfg = base_cfg(args.seed, rounds);
            if suspicion {
                cfg.suspicion = Some(SuspicionConfig::default());
            }
            let h = cfg.topology.build(cfg.seed);
            cfg.faults = scenario_plan(scenario, &h);
            let exp = match Experiment::try_prepare(&cfg) {
                Ok(exp) => exp,
                Err(e) => {
                    eprintln!("  {label}: skipped ({e})");
                    cells.push("invalid".to_string());
                    continue;
                }
            };
            let run = run_prepared_with(&exp, &Telemetry::disabled());
            let clients = h.num_clients();
            let availability = 1.0 - run.result.faulted_total as f64 / (clients * rounds) as f64;
            eprintln!(
                "  {label}: acc {} avail {:.3} (quarantined {}, fault log {})",
                pct(run.result.final_accuracy),
                availability,
                run.result.quarantined_total,
                run.manifest.faults.len()
            );
            csv.push(format!(
                "{scenario},{susp_name},{rounds},{:.4},{:.4},{},{}",
                run.result.final_accuracy,
                availability,
                run.result.faulted_total,
                run.result.quarantined_total
            ));
            cells.push(format!(
                "{} / {:.1}%",
                pct(run.result.final_accuracy),
                availability * 100.0
            ));
            manifests.push(run.manifest);
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "fault scenario (acc / availability)",
                "suspicion off",
                "suspicion on"
            ],
            &rows
        )
    );
    write_csv_or_exit(
        &args.out_dir,
        "combined",
        "scenario,suspicion,rounds,final_accuracy,availability,faulted_total,quarantined_total",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "combined", &manifests);
}
