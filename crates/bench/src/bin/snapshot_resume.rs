//! Snapshot-resume determinism gate: runs a fixture config straight
//! through, then again as capture-at-round-k + resume-from-snapshot
//! (through the serialized byte codec, so the on-disk path is what is
//! proven), and demands the two final manifests be **byte-identical**.
//!
//! ```sh
//! # The CI gate (one line per fixture; non-zero exit on any mismatch):
//! cargo run --release -p hfl-bench --bin snapshot_resume -- --out results/snapshot
//!
//! # One fixture, custom horizon and checkpoint:
//! cargo run --release -p hfl-bench --bin snapshot_resume -- \
//!     --config faulted --rounds 20 --at 10
//! ```
//!
//! The fixtures mirror `tests/golden_manifests.rs`: the clean path
//! (churn + sub-unit quorum), the fault-injected path, the arms-race
//! path (adaptive ALIE + suspicion + equivocation) and the withholding
//! CBA path — every layer with restorable state is crossed at least
//! once. Both manifests are persisted under `--out` for post-mortems.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::runner::{
    resume_prepared_with, run_prepared_snapshotting, Experiment, InstrumentedRun,
};
use hfl_attacks::{AdaptiveAttack, ModelAttack, Placement, ProtocolAttack};
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_robust::SuspicionConfig;
use hfl_snapshot::EngineSnapshot;
use hfl_telemetry::Telemetry;

struct ResumeArgs {
    config: Option<String>,
    rounds: usize,
    at: Option<usize>,
    out_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: snapshot_resume [--config clean|faulted|armed|withhold] \
         [--rounds N] [--at K] [--quick] [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> ResumeArgs {
    let mut args = ResumeArgs {
        config: None,
        rounds: 20,
        at: None,
        out_dir: PathBuf::from("results/snapshot"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--config" => args.config = Some(value()),
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--at" => args.at = Some(value().parse().unwrap_or_else(|_| usage())),
            "--quick" => args.rounds = 8,
            "--out" => args.out_dir = PathBuf::from(value()),
            _ => usage(),
        }
    }
    if args.rounds < 2 {
        eprintln!("--rounds must be at least 2 (need a non-empty prefix and suffix)");
        usage();
    }
    args
}

/// The shared small task every fixture runs, stretched to the requested
/// horizon (`eval_every = 2` so the checkpoint prefix contains
/// evaluation records, exercising accuracy-log restoration).
fn base(attack: AttackCfg, seed: u64, rounds: usize) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = rounds;
    cfg.eval_every = 2;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    cfg
}

fn fixture(name: &str, rounds: usize) -> HflConfig {
    match name {
        "clean" => {
            let mut cfg = base(AttackCfg::None, 2024, rounds);
            cfg.quorum = 0.75;
            cfg.churn_leave_prob = 0.1;
            cfg
        }
        "faulted" => {
            let mut cfg = base(AttackCfg::None, 2025, rounds);
            cfg.quorum = 0.75;
            let split: Vec<usize> = (0..24).collect();
            let rest: Vec<usize> = (24..64).collect();
            cfg.faults = Some(
                FaultPlan::new()
                    .crash_stop(1, 2)
                    .kill_leader(1, 2, 1, None)
                    .partition(2, vec![split, rest], 3)
                    .straggler(1, 6, 8.0, None),
            );
            cfg
        }
        "armed" => {
            let mut cfg = base(
                AttackCfg::Adaptive {
                    attack: AdaptiveAttack::alie_default(),
                    proportion: 0.25,
                    placement: Placement::Prefix,
                },
                2026,
                rounds,
            );
            cfg.suspicion = Some(SuspicionConfig::default());
            cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
            cfg
        }
        "withhold" => {
            let mut cfg = base(
                AttackCfg::Model {
                    attack: ModelAttack::SignFlip { scale: 2.0 },
                    proportion: 0.25,
                    placement: Placement::Random,
                },
                2027,
                rounds,
            );
            cfg.quorum = 0.75;
            cfg.levels[2] = LevelAgg::Cba(hfl_consensus::ConsensusKind::VoteMajority);
            cfg.suspicion = Some(SuspicionConfig::default());
            cfg.protocol_attack = Some(ProtocolAttack::Withhold);
            cfg
        }
        other => {
            eprintln!("unknown fixture `{other}`");
            usage()
        }
    }
}

fn write_or_exit(path: &Path, content: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    }
    std::fs::write(path, content)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Runs one fixture both ways and compares the manifests. Returns true
/// when they match byte-for-byte.
fn check_fixture(name: &str, rounds: usize, at: usize, out_dir: &Path) -> bool {
    let cfg = fixture(name, rounds);

    // Straight through, capturing a snapshot at round `at`.
    let exp = Experiment::prepare(&cfg);
    let (telem, _rec) = Telemetry::recording();
    let (straight, snapshots) = run_prepared_snapshotting(&exp, &telem, at);
    let snap = snapshots
        .iter()
        .find(|s| s.round == at)
        .unwrap_or_else(|| panic!("{name}: no snapshot captured at round {at}"));

    // Round-trip through the byte codec: resume from what a file would
    // hold, not from the in-memory value.
    let bytes = snap.to_bytes();
    let snap = EngineSnapshot::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{name}: snapshot codec round-trip failed: {e}"));

    let resumed: InstrumentedRun = {
        let exp = Experiment::prepare(&cfg);
        let (telem, _rec) = Telemetry::recording();
        resume_prepared_with(&exp, &telem, &snap)
            .unwrap_or_else(|e| panic!("{name}: resume refused: {e}"))
    };

    let straight_json = straight.manifest.to_json();
    let resumed_json = resumed.manifest.to_json();
    write_or_exit(
        &out_dir.join(format!("{name}.straight.manifest.json")),
        &straight_json,
    );
    write_or_exit(
        &out_dir.join(format!("{name}.resumed.manifest.json")),
        &resumed_json,
    );

    let ok = straight_json == resumed_json;
    println!(
        "{name}: straight({rounds}) vs capture@{at}+resume → {} ({} snapshot bytes)",
        if ok { "byte-identical" } else { "DIVERGED" },
        bytes.len(),
    );
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let at = args.at.unwrap_or(args.rounds / 2).max(1);
    if at >= args.rounds {
        eprintln!("--at must be before --rounds (got {at} >= {})", args.rounds);
        usage();
    }
    let names: Vec<&str> = match &args.config {
        Some(one) => vec![one.as_str()],
        None => vec!["clean", "faulted", "armed", "withhold"],
    };
    let mut all_ok = true;
    for name in names {
        all_ok &= check_fixture(name, args.rounds, at, &args.out_dir);
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "resume diverged from straight-through execution; \
             compare the manifest pairs under {}",
            args.out_dir.display()
        );
        ExitCode::FAILURE
    }
}
