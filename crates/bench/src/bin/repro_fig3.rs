//! Reproduces **Figure 3** — convergence curves (test accuracy vs global
//! round) with 5-run confidence bands, ABD-HFL vs vanilla FL, for the
//! data-poisoning scenarios of the paper.
//!
//! Emits one CSV per scenario with columns
//! `round,abd_mean,abd_lo,abd_hi,vanilla_mean,vanilla_lo,vanilla_hi`.

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::run::run;
use abd_hfl_core::vanilla::{paper_vanilla_aggregator, run_vanilla};
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::ci::summarize_series;
use hfl_bench::report::write_csv_or_exit;
use hfl_bench::Args;
use hfl_ml::rng::derive_seed;

/// The scenarios Figure 3 plots (proportions of malicious clients).
const SCENARIOS: [f64; 4] = [0.0, 0.30, 0.50, 0.65];

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(200, 40);
    let reps = args.effective_reps(5, 2);
    let eval_every = if rounds >= 100 { 5 } else { 1 };
    eprintln!("Figure 3 reproduction: {rounds} rounds, {reps} runs per curve");

    for iid in [true, false] {
        for type_i in [true, false] {
            let dist = if iid { "iid" } else { "noniid" };
            let atk = if type_i { "type1" } else { "type2" };
            for &p in &SCENARIOS {
                let label = format!("{dist}/{atk}/p{}", (p * 100.0) as u32);
                if !args.matches(&label) {
                    continue;
                }
                let attack = if p == 0.0 {
                    AttackCfg::None
                } else {
                    AttackCfg::Data {
                        attack: if type_i {
                            DataAttack::type_i()
                        } else {
                            DataAttack::type_ii()
                        },
                        proportion: p,
                        placement: Placement::Prefix,
                    }
                };
                let mut abd_runs = Vec::new();
                let mut van_runs = Vec::new();
                let mut round_axis = Vec::new();
                for rep in 0..reps {
                    let seed = derive_seed(args.seed, 0xF163 + ((rep as u64) << 8));
                    let base = if iid {
                        HflConfig::paper_iid(attack.clone(), seed)
                    } else {
                        HflConfig::paper_noniid(attack.clone(), seed)
                    };
                    let cfg = HflConfig {
                        rounds,
                        eval_every,
                        ..base
                    };
                    let abd = run(&cfg);
                    let van = run_vanilla(&cfg, paper_vanilla_aggregator(iid, 64));
                    if round_axis.is_empty() {
                        round_axis = abd.accuracy.iter().map(|(r, _)| *r).collect();
                    }
                    abd_runs.push(abd.accuracy.iter().map(|(_, a)| *a).collect::<Vec<_>>());
                    van_runs.push(van.accuracy.iter().map(|(_, a)| *a).collect::<Vec<_>>());
                    eprintln!(
                        "  {label} rep {rep}: abd {:.3} vanilla {:.3}",
                        abd.final_accuracy, van.final_accuracy
                    );
                }
                let abd_band = summarize_series(&abd_runs);
                let van_band = summarize_series(&van_runs);
                let rows: Vec<String> = round_axis
                    .iter()
                    .zip(abd_band.iter().zip(&van_band))
                    .map(|(r, (a, v))| {
                        format!(
                            "{r},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                            a.mean,
                            a.lo(),
                            a.hi(),
                            v.mean,
                            v.lo(),
                            v.hi()
                        )
                    })
                    .collect();
                write_csv_or_exit(
                    &args.out_dir,
                    &format!("fig3_{dist}_{atk}_p{}", (p * 100.0) as u32),
                    "round,abd_mean,abd_lo,abd_hi,vanilla_mean,vanilla_lo,vanilla_hi",
                    &rows,
                );
            }
        }
    }
}
