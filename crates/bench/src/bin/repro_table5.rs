//! Reproduces **Table V** — final testing accuracy of ABD-HFL vs vanilla
//! FL under data-poisoning attacks.
//!
//! Grid: {IID, non-IID} × {Type I, Type II} × {ABD-HFL, Vanilla} ×
//! malicious proportion ∈ {0, 5, 10, 20, 30, 40, 50, 57.8, 65} %, five
//! repetitions each (the paper's protocol).
//!
//! ```text
//! cargo run --release -p hfl-bench --bin repro_table5            # full
//! cargo run --release -p hfl-bench --bin repro_table5 -- --quick # smoke
//! ```

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::run::RunOptions;
use abd_hfl_core::vanilla::{paper_vanilla_aggregator, run_vanilla_with};
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::{Args, Summary};
use hfl_ml::rng::derive_seed;
use hfl_telemetry::Telemetry;

/// The paper's malicious-proportion grid.
const PROPORTIONS: [f64; 9] = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.578, 0.65];

fn attack_cfg(type_i: bool, proportion: f64) -> AttackCfg {
    if proportion == 0.0 {
        return AttackCfg::None;
    }
    let attack = if type_i {
        DataAttack::type_i()
    } else {
        DataAttack::type_ii()
    };
    AttackCfg::Data {
        attack,
        proportion,
        placement: Placement::Prefix,
    }
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(200, 40);
    let reps = args.effective_reps(5, 2);
    eprintln!("Table V reproduction: {rounds} rounds × {reps} repetitions per cell");

    let mut csv_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut manifests = Vec::new();

    for iid in [true, false] {
        for type_i in [true, false] {
            let dist = if iid { "iid" } else { "noniid" };
            let atk = if type_i { "type1" } else { "type2" };
            for abd in [true, false] {
                let model = if abd { "abd-hfl" } else { "vanilla" };
                let label = format!("{dist}/{atk}/{model}");
                if !args.matches(&label) {
                    continue;
                }
                let mut cells = Vec::new();
                for &p in &PROPORTIONS {
                    let accs: Vec<f64> = (0..reps)
                        .map(|rep| {
                            let seed = derive_seed(
                                args.seed,
                                (rep as u64) << 32
                                    | (p * 1000.0) as u64
                                    | u64::from(iid) << 20
                                    | u64::from(type_i) << 21,
                            );
                            let base = if iid {
                                HflConfig::paper_iid(attack_cfg(type_i, p), seed)
                            } else {
                                HflConfig::paper_noniid(attack_cfg(type_i, p), seed)
                            };
                            let cfg = HflConfig {
                                rounds,
                                eval_every: rounds, // final accuracy only
                                ..base
                            };
                            // One fresh registry per run: manifests stay
                            // per-run, not cumulative across the grid.
                            let telem = Telemetry::disabled();
                            let mut run = if abd {
                                RunOptions::new().telemetry(&telem).run(&cfg).into_sync()
                            } else {
                                run_vanilla_with(&cfg, paper_vanilla_aggregator(iid, 64), &telem)
                            };
                            let acc = run.result.final_accuracy;
                            run.manifest.label = format!("table5/{label}/p{p}/rep{rep}");
                            manifests.push(run.manifest);
                            csv_rows.push(format!("{dist},{atk},{model},{p},{rep},{acc:.4}"));
                            acc
                        })
                        .collect();
                    let s = Summary::of(&accs);
                    cells.push(pct(s.mean));
                    eprintln!(
                        "  {label} p={p:>5}: {} (±{:.1})",
                        pct(s.mean),
                        s.std * 100.0
                    );
                }
                let mut row = vec![dist.to_string(), atk.to_string(), model.to_string()];
                row.extend(cells);
                table_rows.push(row);
            }
        }
    }

    let mut headers = vec!["dist", "attack", "model"];
    let prop_labels: Vec<String> = PROPORTIONS
        .iter()
        .map(|p| format!("{:.1}%", p * 100.0))
        .collect();
    headers.extend(prop_labels.iter().map(|s| s.as_str()));
    println!("\n## Table V — final testing accuracy on global models\n");
    println!("{}", markdown_table(&headers, &table_rows));

    write_csv_or_exit(
        &args.out_dir,
        "table5",
        "distribution,attack,model,proportion,rep,final_accuracy",
        &csv_rows,
    );
    write_manifests_or_exit(&args.out_dir, "table5", &manifests);
}
