//! Reproduces the **ACSM analysis** (Appendix C, Theorem 3): on random
//! arbitrary-cluster-size hierarchies, the tolerated Byzantine share of a
//! level is governed by the *relative reliable number* ψ — the fraction
//! of the level's nodes living in honest clusters.
//!
//! The experiment poisons whole bottom clusters (making them Byzantine
//! clusters per Definition 5) to sweep ψ, and measures final accuracy.
//! The transition should track `1 − (1−γ₂)·ψ` qualitatively: accuracy
//! holds while the realized Byzantine share stays below the bound and
//! collapses beyond it.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
use abd_hfl_core::run::run;
use abd_hfl_core::theory;
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_consensus::ConsensusKind;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(80, 25);
    let reps = args.effective_reps(3, 1);
    eprintln!("ACSM / Theorem 3: random hierarchies, whole-cluster poisoning");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // ψ sweep: fraction of bottom clusters kept honest.
    for honest_cluster_frac in [1.0f64, 0.8, 0.6, 0.4] {
        let mut accs = Vec::new();
        let mut psis = Vec::new();
        let mut props = Vec::new();
        for rep in 0..reps {
            let seed = derive_seed(args.seed, 0xAC5 + ((rep as u64) << 8));
            let topo = TopologyCfg::AcsmRandom {
                n_bottom: 64,
                total_levels: 3,
                min_size: 3,
                max_size: 8,
            };
            let h = topo.build(seed);
            let bottom = h.bottom_level();
            let clusters = &h.level(bottom).clusters;
            // Poison the trailing clusters wholesale.
            let n_honest = ((clusters.len() as f64) * honest_cluster_frac).round() as usize;
            let mut mask = vec![false; h.num_clients()];
            for c in clusters.iter().skip(n_honest) {
                for &m in &c.members {
                    mask[m] = true;
                }
            }
            let sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
            let honest_flags: Vec<bool> = (0..clusters.len()).map(|i| i < n_honest).collect();
            let psi = theory::relative_reliable_number(&sizes, &honest_flags);
            let proportion = mask.iter().filter(|b| **b).count() as f64 / mask.len() as f64;
            psis.push(psi);
            props.push(proportion);

            let mut cfg = HflConfig::paper_iid(
                AttackCfg::Data {
                    attack: DataAttack::type_i(),
                    proportion,
                    placement: Placement::Prefix,
                },
                seed,
            );
            cfg.malicious_override = Some(mask);
            cfg.topology = topo;
            cfg.levels = vec![
                LevelAgg::Cba(ConsensusKind::VoteMajority),
                LevelAgg::Bra(AggregatorKind::Median),
                LevelAgg::Bra(AggregatorKind::Median),
            ];
            cfg.rounds = rounds;
            cfg.eval_every = rounds;
            cfg.data = SynthConfig {
                train_samples: 19_200,
                test_samples: 4_000,
                ..SynthConfig::default()
            };
            let r = run(&cfg);
            accs.push(r.final_accuracy);
            csv.push(format!(
                "{honest_cluster_frac},{psi:.4},{proportion:.4},{rep},{:.4}",
                r.final_accuracy
            ));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let psi = mean(&psis);
        rows.push(vec![
            format!("{:.0}%", honest_cluster_frac * 100.0),
            format!("{psi:.3}"),
            format!(
                "{:.1}%",
                theory::theorem3_max_byzantine_ratio(0.5, psi, false) * 100.0
            ),
            format!("{:.1}%", mean(&props) * 100.0),
            pct(mean(&accs)),
        ]);
        eprintln!(
            "  honest clusters {:.0}%: ψ={psi:.3}, acc {}",
            honest_cluster_frac * 100.0,
            pct(mean(&accs))
        );
    }
    println!("\n## ACSM / Theorem 3 — random hierarchies, whole-cluster poisoning\n");
    println!(
        "{}",
        markdown_table(
            &[
                "honest clusters",
                "ψ (bottom)",
                "Thm-3 bound (γ2=50%)",
                "realized Byzantine share",
                "accuracy"
            ],
            &rows
        )
    );
    write_csv_or_exit(
        &args.out_dir,
        "acsm",
        "honest_cluster_frac,psi,proportion,rep,final_accuracy",
        &csv,
    );
}
