//! Performance baseline: fixed-seed sweeps distilled into two
//! machine-readable documents so CI can track end-to-end round
//! throughput (synchronous barriers *and* deadline-driven buffers,
//! DESIGN.md §12), per-round working-set peak, aggregation-kernel
//! latency, per-round traffic and the hot-path overhaul's before/after
//! numbers across commits without a Criterion run.
//!
//! ```sh
//! cargo run --release -p hfl-bench --bin perf_baseline -- --out results
//! cargo run --release -p hfl-bench --bin perf_baseline -- --quick   # CI
//! ```
//!
//! One invocation writes both files:
//!
//! * `BENCH_9.json` (schema 3, `kind: "baseline"`) — the legacy
//!   end-to-end and aggregator-sweep rows, **plus** the hot kernels
//!   timed through their retained pre-overhaul reference
//!   implementations (`hfl_tensor::ops::reference`,
//!   `hfl_robust::krum::reference`). This is the *before* view. The
//!   population-scale sweep in `repro_scale` writes the same shape
//!   with `kind: "scale"`.
//! * `BENCH_10.json` (schema 4, `kind: "hot_paths"`) — the same hot
//!   kernels through the optimized blocked/fused paths, each row
//!   carrying `ns_per_op` (after), `ns_per_op_naive` (before) and the
//!   derived `speedup`, plus `steady_allocs_per_round` from driving
//!   engine rounds under the counting allocator (self-validated to be
//!   exactly 0 after warmup on the single-threaded BRA path).
//!
//! `scripts/ci.sh` joins the two files with `bench_compare` and
//! hard-fails when any shared kernel regresses by more than 25%.
//!
//! Timings use `std::time::Instant` around otherwise fully
//! deterministic work, so everything except the timing and allocation
//! fields is reproducible byte-for-byte.

use std::path::Path;
use std::time::Instant;

use abd_hfl_core::config::{AsyncRoundCfg, AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_bench::memprobe::{self, CountingAlloc};
use hfl_bench::Args;
use hfl_ml::synth::SynthConfig;
use hfl_robust::krum::{self, reference as krum_reference};
use hfl_robust::AggregatorKind;
use hfl_telemetry::{Json, Telemetry};
use hfl_tensor::ops::{self, reference};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-updates for the kernel sweep: `n` vectors of
/// dimension `dim`, values in roughly [-1, 1] from a splitmix-style
/// integer hash (no RNG state to carry).
fn synth_updates(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let mut x = (i as u64) << 32 | j as u64;
                    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    x ^= x >> 31;
                    ((x % 2_000) as f32 / 1_000.0) - 1.0
                })
                .collect()
        })
        .collect()
}

/// Median-of-reps wall time for one closure, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// One hot kernel's before/after pair: the optimized path and its
/// retained naive reference, timed over the same fixed input.
struct HotRow {
    name: &'static str,
    ns_per_op: u64,
    ns_per_op_naive: u64,
}

impl HotRow {
    fn speedup(&self) -> f64 {
        self.ns_per_op_naive as f64 / self.ns_per_op as f64
    }
}

/// Times the overhauled hot kernels against their references:
/// Krum-family scoring (blocked upper-triangle vs full-matrix),
/// one-vs-many squared distances (tiled vs row-at-a-time), and the
/// fused mean/weighted-mean reductions (single-pass vs
/// zero/axpy/scale).
fn time_hot_kernels(refs: &[&[f32]], kdim: usize, reps: usize, kiters: usize) -> Vec<HotRow> {
    let probe = synth_updates(refs.len() + 1, kdim).pop().unwrap();
    let weights: Vec<f32> = (0..refs.len()).map(|i| 1.0 + i as f32 * 0.25).collect();
    let mut dists = vec![0.0f64; refs.len()];
    let mut mean = vec![0.0f32; kdim];

    let mut rows = Vec::new();
    let mut push = |name: &'static str, opt_ns: u128, naive_ns: u128| {
        let row = HotRow {
            name,
            ns_per_op: (opt_ns / kiters as u128).max(1) as u64,
            ns_per_op_naive: (naive_ns / kiters as u128).max(1) as u64,
        };
        println!(
            "hot kernel {}: {} ns/op optimized, {} ns/op naive ({:.2}x)",
            row.name,
            row.ns_per_op,
            row.ns_per_op_naive,
            row.speedup()
        );
        rows.push(row);
    };

    // Krum-family scoring: single-threaded so the comparison isolates
    // the blocked-triangle + fused-kernel work, not thread scheduling.
    let opt = time_ns(reps, || {
        for _ in 0..kiters {
            let s = krum::krum_scores_with_threads(refs, 2, 1);
            assert_eq!(s.len(), refs.len());
        }
    });
    let naive = time_ns(reps, || {
        for _ in 0..kiters {
            let s = krum_reference::krum_scores_naive(refs, 2, 1);
            assert_eq!(s.len(), refs.len());
        }
    });
    push("krum_scores", opt, naive);

    let opt = time_ns(reps, || {
        for _ in 0..kiters {
            ops::dist_sq_block(&probe, refs, &mut dists);
            assert!(dists[0] >= 0.0);
        }
    });
    let naive = time_ns(reps, || {
        for _ in 0..kiters {
            reference::dist_sq_rows_naive(&probe, refs, &mut dists);
            assert!(dists[0] >= 0.0);
        }
    });
    push("dist_rows", opt, naive);

    let opt = time_ns(reps, || {
        for _ in 0..kiters {
            ops::mean_of(refs, &mut mean);
            assert!(mean[0].is_finite());
        }
    });
    let naive = time_ns(reps, || {
        for _ in 0..kiters {
            reference::mean_of_naive(refs, &mut mean);
            assert!(mean[0].is_finite());
        }
    });
    push("mean_of", opt, naive);

    let opt = time_ns(reps, || {
        for _ in 0..kiters {
            ops::weighted_mean_of(refs, &weights, &mut mean);
            assert!(mean[0].is_finite());
        }
    });
    let naive = time_ns(reps, || {
        for _ in 0..kiters {
            reference::weighted_mean_of_naive(refs, &weights, &mut mean);
            assert!(mean[0].is_finite());
        }
    });
    push("weighted_mean_of", opt, naive);

    rows
}

/// Worst steady-state allocation-event count per round on the all-BRA
/// fixture, threads pinned to 1 (the form the zero-allocation invariant
/// is defined over — results are byte-identical at any thread count).
fn steady_allocs_per_round(seed: u64) -> u64 {
    const WARMUP: usize = 5;
    const STEADY: usize = 10;
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.rounds = WARMUP + STEADY;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    for level in cfg.levels.iter_mut() {
        *level = LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 });
    }
    let exp = Experiment::prepare(&cfg);
    hfl_parallel::set_default_threads(1);
    let probe = memprobe::probe_rounds_with_warmup(&exp, WARMUP, STEADY);
    hfl_parallel::set_default_threads(0);
    probe.max_round_allocs
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(20, 6);
    let reps = args.effective_reps(3, 2);
    let (kn, kdim, kiters) = if args.quick {
        (16, 256, 5)
    } else {
        (16, 1024, 20)
    };

    // --- end-to-end: the clean quick config at a fixed seed ---
    let mut cfg = HflConfig::quick(AttackCfg::None, args.seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    let exp = Experiment::prepare(&cfg);
    let mut last_run = None;
    let e2e_ns = time_ns(reps, || {
        let (telem, _rec) = Telemetry::recording();
        last_run = Some(run_prepared_with(&exp, &telem));
    });
    let run = last_run.expect("at least one timed rep ran");
    let rounds_per_sec = rounds as f64 / (e2e_ns as f64 / 1e9);
    let updates_per_sec = rounds_per_sec * exp.hierarchy.num_clients() as f64;
    let bytes_per_round = run.manifest.totals.bytes / rounds as u64;
    let messages_per_round = run.manifest.totals.messages / rounds as u64;
    // Per-round transient allocation peak, from a short manual loop
    // (no eval) under the counting allocator — the same probe the
    // scale sweep gates on.
    let peak_round_bytes = memprobe::probe_rounds(&exp, rounds.min(3)).peak_round_bytes;

    // --- end-to-end again under deadline-driven buffers (same seed) ---
    let mut async_cfg = cfg.clone();
    async_cfg.async_rounds = Some(AsyncRoundCfg::lan());
    let async_exp = Experiment::prepare(&async_cfg);
    let async_ns = time_ns(reps, || {
        let (telem, _rec) = Telemetry::recording();
        run_prepared_with(&async_exp, &telem);
    });
    let async_rounds_per_sec = rounds as f64 / (async_ns as f64 / 1e9);

    // --- aggregation kernels over a fixed synthetic input ---
    let updates = synth_updates(kn, kdim);
    let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
    let kernels: Vec<(&'static str, AggregatorKind)> = vec![
        ("fedavg", AggregatorKind::FedAvg),
        ("krum", AggregatorKind::Krum { f: 2 }),
        ("multikrum", AggregatorKind::MultiKrum { f: 2, m: 8 }),
        ("median", AggregatorKind::Median),
        ("trimmed_mean", AggregatorKind::TrimmedMean { ratio: 0.2 }),
        ("geomed", AggregatorKind::GeoMed),
        (
            "centered_clip",
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
        ),
        (
            "cosine_clustering",
            AggregatorKind::CosineClustering { threshold: 0.0 },
        ),
        ("autogm", AggregatorKind::AutoGm { kappa: 3.0 }),
        // Thresholds below n so the one-pass (non-exact) path is the
        // one timed.
        (
            "streaming_median",
            AggregatorKind::StreamingMedian { exact_threshold: 8 },
        ),
        (
            "streaming_trimmed_mean",
            AggregatorKind::StreamingTrimmedMean {
                ratio: 0.2,
                exact_threshold: 8,
            },
        ),
        ("sampled_krum", AggregatorKind::SampledKrum { f: 2, m: 8 }),
    ];
    let mut kernel_rows = Vec::new();
    for (name, kind) in &kernels {
        let agg = kind.build();
        let ns = time_ns(reps, || {
            for _ in 0..kiters {
                let out = agg.aggregate(&refs, None);
                assert_eq!(out.len(), kdim, "{name} returned a wrong dimension");
            }
        });
        let ns_per_op = (ns / kiters as u128).max(1) as u64;
        println!("kernel {name}: {ns_per_op} ns/op (n={kn}, dim={kdim})");
        kernel_rows.push(Json::Obj(vec![
            ("name".into(), Json::Str((*name).to_string())),
            ("n".into(), Json::UInt(kn as u64)),
            ("dim".into(), Json::UInt(kdim as u64)),
            ("ns_per_op".into(), Json::UInt(ns_per_op)),
        ]));
    }

    // --- hot-path before/after + the steady-state allocation count ---
    let hot = time_hot_kernels(&refs, kdim, reps, kiters);
    let steady_allocs = steady_allocs_per_round(args.seed);
    println!("steady-state allocations per round: {steady_allocs}");

    // Self-validate: a zero anywhere means the harness mis-measured,
    // and a silent zero would poison trend tracking.
    assert!(rounds_per_sec > 0.0, "non-positive round throughput");
    assert!(
        async_rounds_per_sec > 0.0,
        "non-positive async round throughput"
    );
    assert!(bytes_per_round > 0, "zero bytes per round");
    assert!(messages_per_round > 0, "zero messages per round");
    assert!(updates_per_sec > 0.0, "non-positive update throughput");
    assert!(peak_round_bytes > 0, "allocation probe saw nothing");
    assert_eq!(
        steady_allocs, 0,
        "steady-state rounds must not allocate (workspace arena regressed)"
    );

    let dir = Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));

    // BENCH_9.json — the *before* view: legacy rows plus the hot
    // kernels timed through their retained naive references.
    let mut before_rows = kernel_rows.clone();
    for row in &hot {
        before_rows.push(Json::Obj(vec![
            ("name".into(), Json::Str(row.name.to_string())),
            ("n".into(), Json::UInt(kn as u64)),
            ("dim".into(), Json::UInt(kdim as u64)),
            ("ns_per_op".into(), Json::UInt(row.ns_per_op_naive)),
        ]));
    }
    let before_doc = Json::Obj(vec![
        ("schema".into(), Json::UInt(3)),
        ("kind".into(), Json::Str("baseline".into())),
        ("seed".into(), Json::UInt(args.seed)),
        ("rounds".into(), Json::UInt(rounds as u64)),
        ("rounds_per_sec".into(), Json::Num(rounds_per_sec)),
        ("updates_per_sec".into(), Json::Num(updates_per_sec)),
        (
            "async_rounds_per_sec".into(),
            Json::Num(async_rounds_per_sec),
        ),
        ("bytes_per_round".into(), Json::UInt(bytes_per_round)),
        ("messages_per_round".into(), Json::UInt(messages_per_round)),
        ("peak_round_bytes".into(), Json::UInt(peak_round_bytes)),
        ("kernels".into(), Json::Arr(before_rows)),
    ]);
    let before_path = dir.join("BENCH_9.json");
    std::fs::write(&before_path, before_doc.to_string() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", before_path.display()));

    // BENCH_10.json — the *after* view: optimized hot kernels with the
    // before number and speedup embedded, plus the zero-allocation
    // steady-state count.
    let after_rows: Vec<Json> = hot
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("name".into(), Json::Str(row.name.to_string())),
                ("n".into(), Json::UInt(kn as u64)),
                ("dim".into(), Json::UInt(kdim as u64)),
                ("ns_per_op".into(), Json::UInt(row.ns_per_op)),
                ("ns_per_op_naive".into(), Json::UInt(row.ns_per_op_naive)),
                ("speedup".into(), Json::Num(row.speedup())),
            ])
        })
        .collect();
    let after_doc = Json::Obj(vec![
        ("schema".into(), Json::UInt(4)),
        ("kind".into(), Json::Str("hot_paths".into())),
        ("seed".into(), Json::UInt(args.seed)),
        ("rounds".into(), Json::UInt(rounds as u64)),
        ("rounds_per_sec".into(), Json::Num(rounds_per_sec)),
        ("updates_per_sec".into(), Json::Num(updates_per_sec)),
        (
            "async_rounds_per_sec".into(),
            Json::Num(async_rounds_per_sec),
        ),
        ("bytes_per_round".into(), Json::UInt(bytes_per_round)),
        ("messages_per_round".into(), Json::UInt(messages_per_round)),
        ("peak_round_bytes".into(), Json::UInt(peak_round_bytes)),
        ("steady_allocs_per_round".into(), Json::UInt(steady_allocs)),
        ("kernels".into(), Json::Arr(after_rows)),
    ]);
    let after_path = dir.join("BENCH_10.json");
    std::fs::write(&after_path, after_doc.to_string() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", after_path.display()));

    println!(
        "rounds/sec {rounds_per_sec:.2} (async {async_rounds_per_sec:.2}), \
         updates/sec {updates_per_sec:.1}, bytes/round {bytes_per_round}, \
         messages/round {messages_per_round}, peak {peak_round_bytes} B/round"
    );
    eprintln!("wrote {}", before_path.display());
    eprintln!("wrote {}", after_path.display());
}
