//! Performance baseline: fixed-seed sweeps distilled into one
//! machine-readable `BENCH_9.json` so CI can track end-to-end round
//! throughput (synchronous barriers *and* deadline-driven buffers,
//! DESIGN.md §12), per-round working-set peak, aggregation-kernel
//! latency and per-round traffic across commits without a Criterion
//! run. The population-scale sweep lives in `repro_scale`, which
//! writes the same `BENCH_9.json` shape with `kind: "scale"`.
//!
//! ```sh
//! cargo run --release -p hfl-bench --bin perf_baseline -- --out results
//! cargo run --release -p hfl-bench --bin perf_baseline -- --quick   # CI
//! ```
//!
//! Emitted shape (all numbers positive, self-validated before exit):
//!
//! ```json
//! {
//!   "schema": 3,
//!   "kind": "baseline",
//!   "seed": 42,
//!   "rounds": 20,
//!   "rounds_per_sec": 12.3,
//!   "updates_per_sec": 787.2,
//!   "async_rounds_per_sec": 11.9,
//!   "bytes_per_round": 1234567,
//!   "messages_per_round": 181,
//!   "peak_round_bytes": 262144,
//!   "kernels": [{"name": "fedavg", "n": 16, "dim": 1024, "ns_per_op": 4567}, ...]
//! }
//! ```
//!
//! Timings use `std::time::Instant` around otherwise fully
//! deterministic work, so everything except the timing and allocation
//! fields is reproducible byte-for-byte.

use std::path::Path;
use std::time::Instant;

use abd_hfl_core::config::{AsyncRoundCfg, AttackCfg, HflConfig};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_bench::memprobe::{self, CountingAlloc};
use hfl_bench::Args;
use hfl_robust::AggregatorKind;
use hfl_telemetry::{Json, Telemetry};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-updates for the kernel sweep: `n` vectors of
/// dimension `dim`, values in roughly [-1, 1] from a splitmix-style
/// integer hash (no RNG state to carry).
fn synth_updates(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let mut x = (i as u64) << 32 | j as u64;
                    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    x ^= x >> 31;
                    ((x % 2_000) as f32 / 1_000.0) - 1.0
                })
                .collect()
        })
        .collect()
}

/// Median-of-reps wall time for one closure, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(20, 6);
    let reps = args.effective_reps(3, 2);
    let (kn, kdim, kiters) = if args.quick {
        (16, 256, 5)
    } else {
        (16, 1024, 20)
    };

    // --- end-to-end: the clean quick config at a fixed seed ---
    let mut cfg = HflConfig::quick(AttackCfg::None, args.seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    let exp = Experiment::prepare(&cfg);
    let mut last_run = None;
    let e2e_ns = time_ns(reps, || {
        let (telem, _rec) = Telemetry::recording();
        last_run = Some(run_prepared_with(&exp, &telem));
    });
    let run = last_run.expect("at least one timed rep ran");
    let rounds_per_sec = rounds as f64 / (e2e_ns as f64 / 1e9);
    let updates_per_sec = rounds_per_sec * exp.hierarchy.num_clients() as f64;
    let bytes_per_round = run.manifest.totals.bytes / rounds as u64;
    let messages_per_round = run.manifest.totals.messages / rounds as u64;
    // Per-round transient allocation peak, from a short manual loop
    // (no eval) under the counting allocator — the same probe the
    // scale sweep gates on.
    let peak_round_bytes = memprobe::probe_rounds(&exp, rounds.min(3)).peak_round_bytes;

    // --- end-to-end again under deadline-driven buffers (same seed) ---
    let mut async_cfg = cfg.clone();
    async_cfg.async_rounds = Some(AsyncRoundCfg::lan());
    let async_exp = Experiment::prepare(&async_cfg);
    let async_ns = time_ns(reps, || {
        let (telem, _rec) = Telemetry::recording();
        run_prepared_with(&async_exp, &telem);
    });
    let async_rounds_per_sec = rounds as f64 / (async_ns as f64 / 1e9);

    // --- aggregation kernels over a fixed synthetic input ---
    let updates = synth_updates(kn, kdim);
    let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
    let kernels: Vec<(&'static str, AggregatorKind)> = vec![
        ("fedavg", AggregatorKind::FedAvg),
        ("krum", AggregatorKind::Krum { f: 2 }),
        ("multikrum", AggregatorKind::MultiKrum { f: 2, m: 8 }),
        ("median", AggregatorKind::Median),
        ("trimmed_mean", AggregatorKind::TrimmedMean { ratio: 0.2 }),
        ("geomed", AggregatorKind::GeoMed),
        (
            "centered_clip",
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
        ),
        (
            "cosine_clustering",
            AggregatorKind::CosineClustering { threshold: 0.0 },
        ),
        ("autogm", AggregatorKind::AutoGm { kappa: 3.0 }),
        // Thresholds below n so the one-pass (non-exact) path is the
        // one timed.
        (
            "streaming_median",
            AggregatorKind::StreamingMedian { exact_threshold: 8 },
        ),
        (
            "streaming_trimmed_mean",
            AggregatorKind::StreamingTrimmedMean {
                ratio: 0.2,
                exact_threshold: 8,
            },
        ),
        ("sampled_krum", AggregatorKind::SampledKrum { f: 2, m: 8 }),
    ];
    let mut kernel_rows = Vec::new();
    for (name, kind) in &kernels {
        let agg = kind.build();
        let ns = time_ns(reps, || {
            for _ in 0..kiters {
                let out = agg.aggregate(&refs, None);
                assert_eq!(out.len(), kdim, "{name} returned a wrong dimension");
            }
        });
        let ns_per_op = (ns / kiters as u128).max(1) as u64;
        println!("kernel {name}: {ns_per_op} ns/op (n={kn}, dim={kdim})");
        kernel_rows.push(Json::Obj(vec![
            ("name".into(), Json::Str((*name).to_string())),
            ("n".into(), Json::UInt(kn as u64)),
            ("dim".into(), Json::UInt(kdim as u64)),
            ("ns_per_op".into(), Json::UInt(ns_per_op)),
        ]));
    }

    // Self-validate: a zero anywhere means the harness mis-measured,
    // and a silent zero would poison trend tracking.
    assert!(rounds_per_sec > 0.0, "non-positive round throughput");
    assert!(
        async_rounds_per_sec > 0.0,
        "non-positive async round throughput"
    );
    assert!(bytes_per_round > 0, "zero bytes per round");
    assert!(messages_per_round > 0, "zero messages per round");
    assert!(updates_per_sec > 0.0, "non-positive update throughput");
    assert!(peak_round_bytes > 0, "allocation probe saw nothing");

    let doc = Json::Obj(vec![
        ("schema".into(), Json::UInt(3)),
        ("kind".into(), Json::Str("baseline".into())),
        ("seed".into(), Json::UInt(args.seed)),
        ("rounds".into(), Json::UInt(rounds as u64)),
        ("rounds_per_sec".into(), Json::Num(rounds_per_sec)),
        ("updates_per_sec".into(), Json::Num(updates_per_sec)),
        (
            "async_rounds_per_sec".into(),
            Json::Num(async_rounds_per_sec),
        ),
        ("bytes_per_round".into(), Json::UInt(bytes_per_round)),
        ("messages_per_round".into(), Json::UInt(messages_per_round)),
        ("peak_round_bytes".into(), Json::UInt(peak_round_bytes)),
        ("kernels".into(), Json::Arr(kernel_rows)),
    ]);
    let dir = Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join("BENCH_9.json");
    std::fs::write(&path, doc.to_string() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!(
        "rounds/sec {rounds_per_sec:.2} (async {async_rounds_per_sec:.2}), \
         updates/sec {updates_per_sec:.1}, bytes/round {bytes_per_round}, \
         messages/round {messages_per_round}, peak {peak_round_bytes} B/round"
    );
    eprintln!("wrote {}", path.display());
}
