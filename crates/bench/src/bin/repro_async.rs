//! Asynchrony stress experiments on the event-driven pipeline driver:
//!
//! 1. **Straggler mitigation** — heavy-tailed training times with and
//!    without Algorithm 4's collection timeout.
//! 2. **Unreliable channels** — message loss with timeout-based progress.
//! 3. **Correction factor** — Eq. (1) ablation: merging the late global
//!    model with the policy α vs ignoring it (α→α_min) vs adopting it
//!    outright (α = α_max ceiling raised), measured by final accuracy.
//! 4. **Deadline-driven buffers** (DESIGN.md §12) — the round engine's
//!    quorum-or-deadline collection grid: deadline × staleness bound τ
//!    × straggler severity, reporting close causes, τ-window admissions
//!    and drops, and final accuracy. Two invocations with the same
//!    `--seed` produce byte-identical manifest logs
//!    (`async.manifests.jsonl`) — the determinism contract CI diffs.

use abd_hfl_core::config::{AsyncRoundCfg, AttackCfg, HflConfig};
use abd_hfl_core::correction::CorrectionPolicy;
use abd_hfl_core::pipeline::PipelineConfig;
use abd_hfl_core::run::RunOptions;
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_simnet::{DelayModel, SimTime};
use hfl_telemetry::{MetricValue, RunManifest, Telemetry};

/// Reads one counter out of a manifest's metric export (0 when the
/// counter was never touched — the registry only exports live rows).
fn counter(manifest: &RunManifest, name: &str) -> u64 {
    manifest
        .metrics
        .iter()
        .find_map(|s| match (&s.value, s.name.as_str()) {
            (MetricValue::Counter(v), n) if n == name => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

fn base_cfg(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::paper_iid(AttackCfg::None, seed);
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 1_000,
        ..SynthConfig::default()
    };
    cfg
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(10, 4);
    let mut csv = Vec::new();

    // ----- 1. Stragglers --------------------------------------------------
    if args.matches("straggler") {
        println!("## Stragglers — collection timeout vs waiting (10 % × 20× tail)\n");
        let straggler_train = DelayModel::Straggler {
            base: Box::new(DelayModel::Uniform {
                lo: 20_000,
                hi: 40_000,
            }),
            p: 0.1,
            factor: 20.0,
        };
        let mut rows = Vec::new();
        for (name, timeout) in [
            ("wait for all", None),
            ("timeout 60 ms", Some(SimTime::from_millis(60))),
            ("timeout 30 ms", Some(SimTime::from_millis(30))),
        ] {
            let pcfg = PipelineConfig {
                rounds,
                train_delay: straggler_train.clone(),
                collect_timeout: timeout,
                ..PipelineConfig::default()
            };
            let res = RunOptions::pipeline(&pcfg)
                .run(&base_cfg(args.seed))
                .into_pipeline()
                .0;
            rows.push(vec![
                name.to_string(),
                format!("{:.1} ms", res.mean_period * 1e3),
                format!("{:.1}%", res.final_accuracy * 100.0),
            ]);
            csv.push(format!(
                "straggler,{name},{:.6},{:.4}",
                res.mean_period, res.final_accuracy
            ));
            eprintln!("  straggler/{name}: period {:.1} ms", res.mean_period * 1e3);
        }
        println!(
            "{}",
            markdown_table(&["policy", "round period", "final accuracy"], &rows)
        );
    }

    // ----- 2. Message loss -------------------------------------------------
    if args.matches("loss") {
        println!("\n## Unreliable channels — loss with 80 ms timeout\n");
        let mut rows = Vec::new();
        for loss in [0.0, 0.05, 0.15, 0.30] {
            let pcfg = PipelineConfig {
                rounds,
                loss_prob: loss,
                collect_timeout: Some(SimTime::from_millis(80)),
                ..PipelineConfig::default()
            };
            let res = RunOptions::pipeline(&pcfg)
                .run(&base_cfg(args.seed + 1))
                .into_pipeline()
                .0;
            rows.push(vec![
                format!("{:.0}%", loss * 100.0),
                format!("{:.1} ms", res.mean_period * 1e3),
                format!("{:.1}%", res.final_accuracy * 100.0),
                res.rounds.len().to_string(),
            ]);
            csv.push(format!(
                "loss,{loss},{:.6},{:.4}",
                res.mean_period, res.final_accuracy
            ));
            eprintln!("  loss {loss}: acc {:.3}", res.final_accuracy);
        }
        println!(
            "{}",
            markdown_table(
                &["loss", "round period", "final accuracy", "complete rounds"],
                &rows
            )
        );
    }

    // ----- 3. Correction factor ablation ------------------------------------
    if args.matches("correction") {
        // Non-IID clients: training from a flag partial model risks
        // overfitting the local label pair (§III-B's motivation), so the
        // global-model merge is load-bearing here.
        println!("\n## Correction factor (Eq. 1) ablation — non-IID clients\n");
        let mut rows = Vec::new();
        for (name, policy) in [
            (
                "paper policy (latency + coverage)",
                CorrectionPolicy::default(),
            ),
            (
                "ignore global (α ≈ 0)",
                CorrectionPolicy {
                    alpha_max: 0.01,
                    alpha_min: 0.01,
                    latency_half_life: 10.0,
                },
            ),
            (
                "adopt global outright (α ≈ 1)",
                CorrectionPolicy {
                    alpha_max: 1.0,
                    alpha_min: 0.99,
                    latency_half_life: 1e9,
                },
            ),
        ] {
            let mut cfg = HflConfig::paper_noniid(AttackCfg::None, args.seed + 2);
            cfg.data = SynthConfig {
                train_samples: 6_400,
                test_samples: 1_000,
                ..SynthConfig::default()
            };
            cfg.correction = policy;
            // The correction factor matters while the model is moving
            // (staleness costs information); at the plateau every policy
            // converges. Report both phases.
            let early = RunOptions::pipeline(&PipelineConfig {
                rounds: 8,
                ..PipelineConfig::default()
            })
            .run(&cfg)
            .into_pipeline()
            .0;
            let plateau = RunOptions::pipeline(&PipelineConfig {
                rounds: (3 * rounds).max(24),
                ..PipelineConfig::default()
            })
            .run(&cfg)
            .into_pipeline()
            .0;
            rows.push(vec![
                name.to_string(),
                format!("{:.1}%", early.final_accuracy * 100.0),
                format!("{:.1}%", plateau.final_accuracy * 100.0),
            ]);
            csv.push(format!(
                "correction,{name},{:.4},{:.4}",
                early.final_accuracy, plateau.final_accuracy
            ));
            eprintln!(
                "  correction/{name}: early {:.3} plateau {:.3}",
                early.final_accuracy, plateau.final_accuracy
            );
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "correction policy",
                    "early (8 rounds)",
                    "plateau (24+ rounds)"
                ],
                &rows
            )
        );
    }

    // ----- 4. Deadline-driven buffers (engine path, DESIGN.md §12) ----------
    let mut manifests = Vec::new();
    if args.matches("deadline") {
        println!("\n## Deadline buffers — deadline × τ × straggler severity\n");
        let engine_rounds = args.effective_rounds(12, 4);
        let mut rows = Vec::new();
        for (deadline_us, tau_us) in [(2_000u64, 1_000u64), (2_000, 4_000), (6_000, 4_000)] {
            for factor in [1.0f64, 10.0, 100.0] {
                let label = format!("deadline/d{deadline_us}/t{tau_us}/x{factor}");
                if !args.matches(&label) {
                    continue;
                }
                let mut cfg = HflConfig::quick(AttackCfg::None, args.seed + 3);
                cfg.rounds = engine_rounds;
                cfg.eval_every = engine_rounds;
                cfg.async_rounds = Some(AsyncRoundCfg {
                    deadline_us,
                    staleness_bound_us: tau_us,
                    link_delay: DelayModel::Uniform { lo: 500, hi: 5_000 },
                    tier_deadlines: Vec::new(),
                });
                if factor > 1.0 {
                    // One straggler per run: enough to age its cluster's
                    // buffer toward the deadline without starving it.
                    cfg.faults = Some(FaultPlan::new().straggler(0, 1, factor, None));
                }
                let exp = Experiment::prepare(&cfg);
                let (telem, _rec) = Telemetry::recording();
                let run = run_prepared_with(&exp, &telem);
                let quorum_closes = counter(&run.manifest, "hfl_quorum_closes_total");
                let deadline_closes = counter(&run.manifest, "hfl_deadline_closes_total");
                let admitted = counter(&run.manifest, "hfl_stale_admitted_total");
                let dropped = counter(&run.manifest, "hfl_stale_dropped_total");
                eprintln!(
                    "  {label}: acc {} closes {quorum_closes}q/{deadline_closes}d \
                     stale {admitted}+/{dropped}-",
                    pct(run.result.final_accuracy)
                );
                csv.push(format!(
                    "deadline,{deadline_us}/{tau_us}/{factor},{quorum_closes},{:.4}",
                    run.result.final_accuracy
                ));
                rows.push(vec![
                    format!("{} ms", deadline_us as f64 / 1e3),
                    format!("{} ms", tau_us as f64 / 1e3),
                    format!("{factor}×"),
                    pct(run.result.final_accuracy),
                    format!("{quorum_closes} / {deadline_closes}"),
                    format!("{admitted} / {dropped}"),
                ]);
                manifests.push(run.manifest);
            }
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "deadline",
                    "τ",
                    "straggler",
                    "final accuracy",
                    "quorum / deadline closes",
                    "stale admitted / dropped"
                ],
                &rows
            )
        );
    }

    write_csv_or_exit(
        &args.out_dir,
        "async",
        "experiment,setting,period_or_zero,final_accuracy",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "async", &manifests);
}
