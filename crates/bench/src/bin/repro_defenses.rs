//! Reproduces **Table II** quantitatively: every Byzantine-robust
//! aggregation rule head-to-head on vanilla FL under the two headline
//! attacks (Type I data poisoning and sign-flip model poisoning) at 30 %
//! malicious, plus the clean baseline.

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::vanilla::run_vanilla;
use hfl_attacks::{DataAttack, ModelAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn defenses(n: usize) -> Vec<(&'static str, AggregatorKind)> {
    let f = n / 4;
    vec![
        ("fedavg (no defense)", AggregatorKind::FedAvg),
        ("krum", AggregatorKind::Krum { f }),
        ("multi-krum", AggregatorKind::MultiKrum { f, m: n - f }),
        ("median", AggregatorKind::Median),
        ("trimmed-mean", AggregatorKind::TrimmedMean { ratio: 0.3 }),
        ("geomed", AggregatorKind::GeoMed),
        (
            "centered-clip",
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
        ),
        (
            "cosine-clustering",
            AggregatorKind::CosineClustering { threshold: 0.0 },
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(100, 30);
    eprintln!("Defense comparison at 30 % malicious, {rounds} rounds");

    let scenarios: Vec<(&str, AttackCfg)> = vec![
        ("clean", AttackCfg::None),
        (
            "type1",
            AttackCfg::Data {
                attack: DataAttack::type_i(),
                proportion: 0.3,
                placement: Placement::Prefix,
            },
        ),
        (
            "sign-flip",
            AttackCfg::Model {
                attack: ModelAttack::SignFlip { scale: 4.0 },
                proportion: 0.3,
                placement: Placement::Prefix,
            },
        ),
        (
            "ALIE",
            AttackCfg::Model {
                attack: ModelAttack::Alie { z: 2.0 },
                proportion: 0.3,
                placement: Placement::Prefix,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (def_name, kind) in defenses(64) {
        if !args.matches(def_name) {
            continue;
        }
        let mut row = vec![def_name.to_string()];
        for (sc_name, attack) in &scenarios {
            let seed = derive_seed(args.seed, 0xDEFE);
            let mut cfg = HflConfig::paper_iid(attack.clone(), seed);
            cfg.rounds = rounds;
            cfg.eval_every = rounds;
            cfg.data = SynthConfig {
                train_samples: 19_200,
                test_samples: 4_000,
                ..SynthConfig::default()
            };
            let r = run_vanilla(&cfg, kind.clone());
            row.push(pct(r.final_accuracy));
            csv.push(format!("{def_name},{sc_name},{:.4}", r.final_accuracy));
            eprintln!("  {def_name} vs {sc_name}: {}", pct(r.final_accuracy));
        }
        rows.push(row);
    }
    println!("\n## Table II defenses — vanilla FL at 30 % malicious\n");
    println!(
        "{}",
        markdown_table(&["defense", "clean", "type1", "sign-flip", "ALIE"], &rows)
    );
    write_csv_or_exit(
        &args.out_dir,
        "defenses",
        "defense,scenario,final_accuracy",
        &csv,
    );
}
