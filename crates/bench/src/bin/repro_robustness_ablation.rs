//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Vote policy** — the paper's "fewest positive votes" read as
//!    majority-survival vs a fixed exclude-1 top consensus, across the
//!    malicious sweep (why the top level must exclude *all* suspicious
//!    proposals once two subtrees are compromised).
//! 2. **Quorum φ** — accuracy and per-round cost as leaders wait for a
//!    smaller fraction of their cluster (straggler mitigation knob of
//!    Algorithm 4).
//! 3. **Churn** — Assumption 3 stress: rising leave probability.
//! 4. **Partial-aggregation rule** — Multi-Krum vs Median vs GeoMed vs
//!    Trimmed-Mean vs AutoGM inside the hierarchy at a fixed attack.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::run::run;
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_consensus::ConsensusKind;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn base_cfg(proportion: f64, rounds: usize, seed: u64) -> HflConfig {
    let attack = if proportion == 0.0 {
        AttackCfg::None
    } else {
        AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion,
            placement: Placement::Prefix,
        }
    };
    let mut cfg = HflConfig::paper_iid(attack, seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.data = SynthConfig {
        train_samples: 19_200,
        test_samples: 4_000,
        ..SynthConfig::default()
    };
    cfg
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(80, 25);
    let mut csv = Vec::new();

    // ----- 1. Vote policy ablation --------------------------------------
    if args.matches("vote") {
        println!("## Ablation 1 — top-level vote policy (Type I sweep)\n");
        let mut rows = Vec::new();
        for (name, kind) in [
            (
                "majority-survival (paper reading)",
                ConsensusKind::VoteMajority,
            ),
            ("fixed exclude-1", ConsensusKind::Vote { exclude: 1 }),
        ] {
            let mut row = vec![name.to_string()];
            for p in [0.3, 0.45, 0.578] {
                let mut cfg = base_cfg(p, rounds, derive_seed(args.seed, 0xAB1));
                cfg.levels[0] = LevelAgg::Cba(kind.clone());
                let r = run(&cfg);
                row.push(pct(r.final_accuracy));
                csv.push(format!("vote,{name},{p},{:.4}", r.final_accuracy));
                eprintln!("  vote/{name} p={p}: {}", pct(r.final_accuracy));
            }
            rows.push(row);
        }
        println!(
            "{}",
            markdown_table(&["vote policy", "30%", "45%", "57.8%"], &rows)
        );
    }

    // ----- 2. Quorum sweep ----------------------------------------------
    if args.matches("quorum") {
        println!("\n## Ablation 2 — collection quorum φ (clean + 30 % Type I)\n");
        let mut rows = Vec::new();
        for quorum in [1.0, 0.75, 0.5] {
            let mut row = vec![format!("φ = {quorum}")];
            for p in [0.0, 0.3] {
                let mut cfg = base_cfg(p, rounds, derive_seed(args.seed, 0xAB2));
                cfg.quorum = quorum;
                let r = run(&cfg);
                row.push(pct(r.final_accuracy));
                csv.push(format!("quorum,{quorum},{p},{:.4}", r.final_accuracy));
                eprintln!("  quorum {quorum} p={p}: {}", pct(r.final_accuracy));
            }
            rows.push(row);
        }
        println!(
            "{}",
            markdown_table(&["quorum", "clean", "30% Type I"], &rows)
        );
    }

    // ----- 3. Churn sweep -------------------------------------------------
    if args.matches("churn") {
        println!("\n## Ablation 3 — client churn (Assumption 3), clean runs\n");
        let mut rows = Vec::new();
        for leave in [0.0, 0.1, 0.3, 0.5] {
            let mut cfg = base_cfg(0.0, rounds, derive_seed(args.seed, 0xAB3));
            cfg.churn_leave_prob = leave;
            let r = run(&cfg);
            rows.push(vec![
                format!("{:.0}%", leave * 100.0),
                pct(r.final_accuracy),
                r.absent_total.to_string(),
            ]);
            csv.push(format!("churn,{leave},0.0,{:.4}", r.final_accuracy));
            eprintln!("  churn {leave}: {}", pct(r.final_accuracy));
        }
        println!(
            "{}",
            markdown_table(&["leave prob", "accuracy", "total absences"], &rows)
        );
    }

    // ----- 4. Partial-aggregation rule inside the hierarchy --------------
    if args.matches("bra") {
        println!("\n## Ablation 4 — partial-aggregation BRA rule (30 % Type I)\n");
        let mut rows = Vec::new();
        for (name, kind) in [
            ("multi-krum f=1", AggregatorKind::MultiKrum { f: 1, m: 3 }),
            ("median", AggregatorKind::Median),
            (
                "trimmed-mean 25%",
                AggregatorKind::TrimmedMean { ratio: 0.25 },
            ),
            ("geomed", AggregatorKind::GeoMed),
            ("autogm", AggregatorKind::AutoGm { kappa: 3.0 }),
            (
                "centered-clip",
                AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
            ),
            ("fedavg (none)", AggregatorKind::FedAvg),
        ] {
            let mut cfg = base_cfg(0.3, rounds, derive_seed(args.seed, 0xAB4));
            cfg.levels[1] = LevelAgg::Bra(kind.clone());
            cfg.levels[2] = LevelAgg::Bra(kind.clone());
            let r = run(&cfg);
            rows.push(vec![name.to_string(), pct(r.final_accuracy)]);
            csv.push(format!("bra,{name},0.3,{:.4}", r.final_accuracy));
            eprintln!("  bra/{name}: {}", pct(r.final_accuracy));
        }
        println!("{}", markdown_table(&["partial rule", "accuracy"], &rows));
    }

    // ----- 5. Model-poisoning sweep (extension of Table V) ----------------
    if args.matches("modelattack") {
        println!("\n## Ablation 5 — model poisoning (sign-flip ×4), ABD-HFL vs vanilla\n");
        let mut rows = Vec::new();
        for p in [0.1, 0.25, 0.4, 0.5] {
            let attack = AttackCfg::Model {
                attack: hfl_attacks::ModelAttack::SignFlip { scale: 4.0 },
                proportion: p,
                placement: Placement::Spread,
            };
            let mut cfg = base_cfg(0.0, rounds, derive_seed(args.seed, 0xAB5));
            cfg.attack = attack;
            let abd = run(&cfg);
            let vanilla = abd_hfl_core::vanilla::run_vanilla(
                &cfg,
                abd_hfl_core::vanilla::paper_vanilla_aggregator(true, 64),
            );
            rows.push(vec![
                format!("{:.0}%", p * 100.0),
                pct(abd.final_accuracy),
                pct(vanilla.final_accuracy),
            ]);
            csv.push(format!("modelattack,abd,{p},{:.4}", abd.final_accuracy));
            csv.push(format!(
                "modelattack,vanilla,{p},{:.4}",
                vanilla.final_accuracy
            ));
            eprintln!(
                "  modelattack p={p}: abd {} vanilla {}",
                pct(abd.final_accuracy),
                pct(vanilla.final_accuracy)
            );
        }
        println!(
            "{}",
            markdown_table(&["malicious", "ABD-HFL", "vanilla multi-krum"], &rows)
        );
    }

    write_csv_or_exit(
        &args.out_dir,
        "ablations",
        "ablation,setting,attack_proportion,final_accuracy",
        &csv,
    );
}
