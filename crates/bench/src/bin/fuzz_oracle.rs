//! The scenario-fuzzer entry point: draws random-but-seeded scenarios,
//! runs each through the round engine, and holds every run to the seven
//! `hfl-oracle` invariants (quorum safety, accounting conservation,
//! determinism, Byzantine degradation bound, honest-quarantine bound,
//! deadline-buffer liveness, staleness safety).
//!
//! ```sh
//! # CI budget (also the acceptance gate):
//! cargo run --release -p hfl-bench --bin fuzz_oracle -- --iters 200 --seed 42
//!
//! # Prove the oracles catch a broken quorum rule, end to end:
//! cargo run --release -p hfl-bench --bin fuzz_oracle -- --mutation quorum --seed 42
//! ```
//!
//! On a real violation the failing scenario is shrunk to a minimal
//! spec and persisted as a TOML case under `tests/corpus/`, which
//! `tests/oracle_corpus.rs` replays forever after. `--mutation` runs
//! the same pipeline against deliberately corrupted observations (the
//! harness's self-check, see `DESIGN.md` §10) and writes its repro
//! under `target/oracle/` instead — the corpus is reserved for real
//! engine failures.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hfl_oracle::harness::{check, check_cached, Mutation, SnapshotCache};
use hfl_oracle::scenario::{AggSpec, AttackSpec, PreAggSpec, ScenarioGen, ScenarioSpec};
use hfl_oracle::{shrink, toml};

/// Tallies which attack/defense families the stream exercised, so the
/// fuzz log attests gallery coverage (a family the generator silently
/// stopped drawing would show up as a zero here).
#[derive(Default)]
struct Coverage {
    families: std::collections::BTreeMap<&'static str, usize>,
}

impl Coverage {
    fn record(&mut self, spec: &ScenarioSpec) {
        let attack = match &spec.attack {
            AttackSpec::None => "attack:none",
            AttackSpec::SignFlip { .. } => "attack:signflip",
            AttackSpec::Alie { .. } => "attack:alie",
            AttackSpec::Ipm { .. } => "attack:ipm",
            AttackSpec::LabelFlip => "attack:labelflip",
            AttackSpec::Mimic { .. } => "attack:mimic",
            AttackSpec::Scaling { .. } => "attack:scaling",
            AttackSpec::MinMax => "attack:minmax",
            AttackSpec::MinSum => "attack:minsum",
            AttackSpec::AdaptiveAlie => "attack:adaptive_alie",
            AttackSpec::AdaptiveIpm => "attack:adaptive_ipm",
            AttackSpec::AdaptiveScaling => "attack:adaptive_scaling",
        };
        let agg = match &spec.agg {
            AggSpec::FedAvg => "agg:fedavg",
            AggSpec::Krum { .. } => "agg:krum",
            AggSpec::MultiKrum { .. } => "agg:multikrum",
            AggSpec::Median => "agg:median",
            AggSpec::TrimmedMean { .. } => "agg:trimmed_mean",
            AggSpec::GeoMed => "agg:geomed",
            AggSpec::CenteredClip { .. } => "agg:centered_clip",
        };
        let pre = match &spec.pre_agg {
            PreAggSpec::None => "pre_agg:none",
            PreAggSpec::Bucketing { .. } => "pre_agg:bucketing",
            PreAggSpec::Nnm { .. } => "pre_agg:nnm",
        };
        for family in [attack, agg, pre] {
            *self.families.entry(family).or_insert(0) += 1;
        }
        if spec.dirichlet_alpha.is_some() {
            *self.families.entry("data:dirichlet").or_insert(0) += 1;
        }
        if spec.heterogeneity {
            *self.families.entry("net:heterogeneity").or_insert(0) += 1;
        }
        if spec.sampling_population > 0 {
            *self.families.entry("pop:sampled").or_insert(0) += 1;
        }
    }

    fn report(&self) {
        let line: Vec<String> = self
            .families
            .iter()
            .map(|(family, n)| format!("{family}={n}"))
            .collect();
        println!("family coverage: {}", line.join(" "));
    }
}

struct FuzzArgs {
    iters: usize,
    seed: u64,
    mutation: Option<Mutation>,
    snapshots: bool,
    corpus_dir: PathBuf,
    out_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz_oracle [--iters N] [--seed S] \
         [--mutation quorum|conservation|determinism|staleness|defense-bypass] \
         [--snapshots] [--corpus-dir DIR] [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> FuzzArgs {
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = FuzzArgs {
        iters: 50,
        seed: 42,
        mutation: None,
        snapshots: false,
        corpus_dir: workspace.join("tests/corpus"),
        out_dir: workspace.join("target/oracle"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--iters" => {
                args.iters = value().parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                args.seed = value().parse().unwrap_or_else(|_| usage());
            }
            "--mutation" => {
                let name = value();
                args.mutation = Some(Mutation::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown mutation `{name}`");
                    usage()
                }));
            }
            "--snapshots" => args.snapshots = true,
            "--corpus-dir" => args.corpus_dir = PathBuf::from(value()),
            "--out" => args.out_dir = PathBuf::from(value()),
            _ => usage(),
        }
    }
    args
}

/// One oracle check, through the snapshot cache when `--snapshots` is
/// on so horizon-halving shrink candidates resume instead of replaying
/// their prefix.
fn run_check(
    spec: &ScenarioSpec,
    mutation: Option<Mutation>,
    cache: &mut Option<SnapshotCache>,
) -> Result<(hfl_oracle::Observations, Vec<hfl_oracle::Violation>), abd_hfl_core::config::ConfigError>
{
    match cache.as_mut() {
        Some(c) => check_cached(spec, mutation, c),
        None => check(spec, mutation),
    }
}

/// Re-runs a shrink candidate under the active mutation; invalid specs
/// (a topology edit orphaning a fault) count as "does not fail".
fn still_fails(
    spec: &ScenarioSpec,
    mutation: Option<Mutation>,
    cache: &mut Option<SnapshotCache>,
) -> bool {
    matches!(run_check(spec, mutation, cache), Ok((_, v)) if !v.is_empty())
}

fn report_rounds(cache: &Option<SnapshotCache>) {
    if let Some(c) = cache {
        println!(
            "rounds executed: {} (saved {} by snapshot resume)",
            c.rounds_executed, c.rounds_saved
        );
    }
}

fn write_case(dir: &Path, stem: &str, spec: &ScenarioSpec) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(format!("{stem}.toml"));
    std::fs::write(&path, toml::to_toml(spec))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut gen = ScenarioGen::new(args.seed);
    let mut cache = args.snapshots.then(SnapshotCache::new);

    if let Some(mutation) = args.mutation {
        // Self-check mode: corrupted observations MUST trip an oracle.
        for i in 0..args.iters.max(1) {
            let spec = gen.draw();
            let (_, violations) =
                run_check(&spec, Some(mutation), &mut cache).expect("generated spec must be valid");
            if violations.is_empty() {
                continue;
            }
            println!(
                "mutation `{}` caught at iteration {i}: {}",
                mutation.name(),
                violations[0]
            );
            let minimal = shrink::shrink(&spec, |s| still_fails(s, Some(mutation), &mut cache));
            let path = write_case(
                &args.out_dir,
                &format!("mutation_{}", mutation.name()),
                &minimal,
            );
            println!(
                "minimal repro ({} clients, {} rounds): {}",
                minimal.num_clients(),
                minimal.rounds,
                path.display()
            );
            report_rounds(&cache);
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "mutation `{}` was NOT caught in {} iterations — the oracles are blind to it",
            mutation.name(),
            args.iters
        );
        return ExitCode::FAILURE;
    }

    let mut coverage = Coverage::default();
    for i in 0..args.iters {
        let spec = gen.draw();
        coverage.record(&spec);
        let (_, violations) =
            run_check(&spec, None, &mut cache).expect("generated spec must be valid");
        if violations.is_empty() {
            if (i + 1) % 25 == 0 {
                println!("{}/{} scenarios clean", i + 1, args.iters);
            }
            continue;
        }
        eprintln!("iteration {i} (seed {}) violated:", args.seed);
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!("shrinking...");
        let minimal = shrink::shrink(&spec, |s| still_fails(s, None, &mut cache));
        let stem = format!("fuzz_seed{}_iter{i}", args.seed);
        let path = write_case(&args.corpus_dir, &stem, &minimal);
        eprintln!(
            "minimal repro ({} clients, {} rounds) persisted to {} — \
             replayed by tests/oracle_corpus.rs",
            minimal.num_clients(),
            minimal.rounds,
            path.display()
        );
        report_rounds(&cache);
        return ExitCode::FAILURE;
    }
    println!(
        "all {} scenarios upheld the seven oracles (seed {})",
        args.iters, args.seed
    );
    coverage.report();
    report_rounds(&cache);
    ExitCode::SUCCESS
}
