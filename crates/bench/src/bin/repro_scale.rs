//! Population-scale proof for the cross-device refactor (DESIGN.md
//! §14): sweeps the client population n ∈ {10³, 10⁴, 10⁵, 10⁶} at a
//! fixed 64-slot cohort and demands the **per-round** allocation peak
//! stay flat (within 10% of the n = 10³ point) — the lazy
//! `ClientPopulation` means per-round cost depends on the sampled
//! cohort size m, never on n.
//!
//! ```sh
//! # Full sweep up to one million clients (seconds, not hours):
//! cargo run --release -p hfl-bench --bin repro_scale
//!
//! # CI: one 10⁴ point plus a manifest log for the same-seed diff gate:
//! cargo run --release -p hfl-bench --bin repro_scale -- --smoke --out DIR
//! ```
//!
//! Both modes emit `BENCH_9.json` (`schema: 3, kind: "scale"`) with
//! `rounds_per_sec`, `updates_per_sec`, `peak_round_bytes` and
//! `prepared_bytes` per population; smoke mode additionally writes
//! `scale.manifests.jsonl`, which `scripts/ci.sh` diffs across two
//! same-seed runs. The aggregation stack runs the streaming kernels
//! (trimmed mean at the cluster level, median at the top) so the sweep
//! also exercises the one-pass robust path end to end.

use std::path::Path;

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg, SamplingCfg, TopologyCfg};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_bench::memprobe::{self, CountingAlloc};
use hfl_bench::report::write_manifests_or_exit;
use hfl_bench::Args;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;
use hfl_telemetry::{Json, Telemetry};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Cohort slots per round: 8 clusters of 8 in a two-level ECSM.
const COHORT: usize = 64;

/// The populations the full sweep walks; the first is the flatness
/// baseline, the last is the acceptance target.
const POPULATIONS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// One measured sweep point.
struct Point {
    population: usize,
    rounds_per_sec: f64,
    updates_per_sec: f64,
    peak_round_bytes: u64,
    prepared_bytes: u64,
}

/// The cross-device cell: a 64-slot cohort uniformly sampled from
/// `population` each round, streaming kernels at both levels.
fn scale_config(population: usize, seed: u64, rounds: usize) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.topology = TopologyCfg::Ecsm {
        total_levels: 2,
        m: 8,
        n_top: 8,
    };
    cfg.levels = vec![
        // 8 member updates per cluster, threshold 4: the streaming
        // (non-exact) path is the one actually measured.
        LevelAgg::Bra(AggregatorKind::StreamingTrimmedMean {
            ratio: 0.2,
            exact_threshold: 4,
        }),
        LevelAgg::Bra(AggregatorKind::StreamingMedian { exact_threshold: 4 }),
    ];
    cfg.flag_level = 1;
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 500,
        ..SynthConfig::default()
    };
    cfg.sampling = Some(SamplingCfg::uniform(population, COHORT));
    cfg
}

/// Prepares one population and measures its round loop: throughput plus
/// the per-round transient allocation peak from `memprobe`.
fn measure(population: usize, seed: u64, rounds: usize) -> Point {
    let cfg = scale_config(population, seed, rounds);
    let live_before = memprobe::live_bytes();
    let exp = Experiment::try_prepare(&cfg)
        .unwrap_or_else(|e| panic!("population {population} must prepare: {e}"));
    let prepared_bytes = memprobe::live_bytes().saturating_sub(live_before);
    let probe = memprobe::probe_rounds(&exp, rounds);
    assert!(
        probe.messages > 0,
        "population {population} moved no messages"
    );
    let rounds_per_sec = rounds as f64 / probe.elapsed_secs.max(1e-9);
    Point {
        population,
        rounds_per_sec,
        updates_per_sec: rounds_per_sec * exp.hierarchy.num_clients() as f64,
        peak_round_bytes: probe.peak_round_bytes,
        prepared_bytes,
    }
}

fn bench_doc(seed: u64, rounds: usize, points: &[Point]) -> Json {
    let sweep = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("population".into(), Json::UInt(p.population as u64)),
                ("rounds_per_sec".into(), Json::Num(p.rounds_per_sec)),
                ("updates_per_sec".into(), Json::Num(p.updates_per_sec)),
                ("peak_round_bytes".into(), Json::UInt(p.peak_round_bytes)),
                ("prepared_bytes".into(), Json::UInt(p.prepared_bytes)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::UInt(3)),
        ("kind".into(), Json::Str("scale".into())),
        ("seed".into(), Json::UInt(seed)),
        ("rounds".into(), Json::UInt(rounds as u64)),
        ("cohort".into(), Json::UInt(COHORT as u64)),
        ("sweep".into(), Json::Arr(sweep)),
    ])
}

fn write_bench(out_dir: &str, doc: &Json) {
    let dir = Path::new(out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join("BENCH_9.json");
    std::fs::write(&path, doc.to_string() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(8, 4);

    if args.smoke {
        // CI mode: one mid-size population, instrumented end to end so
        // the manifest log exists for the same-seed determinism diff.
        let population = 10_000;
        eprintln!("scale smoke: n = {population}, cohort {COHORT}, {rounds} rounds");
        let point = measure(population, args.seed, rounds);
        let cfg = scale_config(population, args.seed, rounds);
        let exp = Experiment::try_prepare(&cfg).expect("smoke population must prepare");
        let (telem, _rec) = Telemetry::recording();
        let mut run = run_prepared_with(&exp, &telem);
        run.manifest.label = format!("scale/n{population}");
        assert!(
            run.manifest.totals.messages > 0,
            "smoke run moved no messages"
        );
        write_manifests_or_exit(&args.out_dir, "scale", &[run.manifest]);
        assert!(point.peak_round_bytes > 0, "allocation probe saw nothing");
        write_bench(&args.out_dir, &bench_doc(args.seed, rounds, &[point]));
        return;
    }

    eprintln!("scale sweep: n ∈ {POPULATIONS:?}, cohort {COHORT}, {rounds} rounds per point");
    let mut points = Vec::new();
    for population in POPULATIONS {
        let p = measure(population, args.seed, rounds);
        println!(
            "n = {:>9}: {:7.1} rounds/s, {:9.0} updates/s, peak {:>9} B/round, prepared {:>9} B",
            p.population, p.rounds_per_sec, p.updates_per_sec, p.peak_round_bytes, p.prepared_bytes
        );
        points.push(p);
    }

    // The acceptance gate: per-round transient memory must not grow
    // with the population. (Prepared bytes DO grow — the identity-bound
    // malicious mask is one byte per client — which is why the gate is
    // on the round peak, not the resident set.)
    let base = points[0].peak_round_bytes;
    assert!(base > 0, "allocation probe saw nothing at n = 10^3");
    for p in &points[1..] {
        assert!(
            p.peak_round_bytes <= base + base / 10,
            "per-round peak grew with the population: n = {} peaked at {} B \
             vs {} B at n = {} (+10% allowed)",
            p.population,
            p.peak_round_bytes,
            base,
            points[0].population
        );
    }
    println!(
        "per-round peak flat across a {}x population sweep: {} B at n = 10^3 \
         vs {} B at n = 10^6",
        POPULATIONS[POPULATIONS.len() - 1] / POPULATIONS[0],
        base,
        points.last().unwrap().peak_round_bytes
    );
    write_bench(&args.out_dir, &bench_doc(args.seed, rounds, &points));
}
