//! Divergence bisection tool: given two runs that *should* agree, find
//! the first round where they stop agreeing.
//!
//! Two modes:
//!
//! ```sh
//! # Manifest mode — compare two saved `RunManifest` JSON files (e.g.
//! # the pair `snapshot_resume` leaves behind on a failure):
//! cargo run --release -p hfl-bench --bin bisect_divergence -- \
//!     --manifest-a results/snapshot/armed.straight.manifest.json \
//!     --manifest-b results/snapshot/armed.resumed.manifest.json
//!
//! # Spec mode — run two scenario TOMLs (the corpus format) with
//! # per-round snapshot capture and bisect the *full engine state*
//! # (model bytes, layer state, accounting), which catches silent
//! # divergences the manifest never surfaces:
//! cargo run --release -p hfl-bench --bin bisect_divergence -- \
//!     --spec-a tests/corpus/a.toml --spec-b tests/corpus/b.toml
//! ```
//!
//! Exit code: 0 when the runs agree, 1 when a divergence is found
//! (printed with its round and first differing component), 2 on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use abd_hfl_core::runner::{run_prepared_snapshotting, Experiment};
use hfl_oracle::toml;
use hfl_snapshot::{bisect_first, first_divergence, EngineSnapshot};
use hfl_telemetry::{RunManifest, Telemetry};

struct BisectArgs {
    manifest_a: Option<PathBuf>,
    manifest_b: Option<PathBuf>,
    spec_a: Option<PathBuf>,
    spec_b: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bisect_divergence --manifest-a A.json --manifest-b B.json\n\
         \x20      bisect_divergence --spec-a A.toml --spec-b B.toml"
    );
    std::process::exit(2);
}

fn parse_args() -> BisectArgs {
    let mut args = BisectArgs {
        manifest_a: None,
        manifest_b: None,
        spec_a: None,
        spec_b: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || PathBuf::from(it.next().unwrap_or_else(|| usage()));
        match flag.as_str() {
            "--manifest-a" => args.manifest_a = Some(value()),
            "--manifest-b" => args.manifest_b = Some(value()),
            "--spec-a" => args.spec_a = Some(value()),
            "--spec-b" => args.spec_b = Some(value()),
            _ => usage(),
        }
    }
    args
}

fn read_manifest(path: &PathBuf) -> RunManifest {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    RunManifest::from_json(text.trim())
        .unwrap_or_else(|e| panic!("{} is not a run manifest: {e}", path.display()))
}

fn report(d: &hfl_snapshot::Divergence) {
    println!("first divergence: round {} ({})", d.round, d.component);
    println!("  a: {}", summarize(&d.a));
    println!("  b: {}", summarize(&d.b));
}

/// Keeps terminal output sane when the differing component renders
/// large (a full metrics dump, a long event list).
fn summarize(s: &str) -> String {
    const LIMIT: usize = 200;
    let line = s.lines().next().unwrap_or("");
    if line.len() > LIMIT {
        let cut = (0..=LIMIT)
            .rev()
            .find(|&i| line.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}… ({} bytes)", &line[..cut], s.len())
    } else if s.lines().count() > 1 {
        format!("{}… ({} lines)", line, s.lines().count())
    } else {
        line.to_string()
    }
}

fn manifest_mode(a: &PathBuf, b: &PathBuf) -> ExitCode {
    let (ma, mb) = (read_manifest(a), read_manifest(b));
    match first_divergence(&ma, &mb, |round, diff| {
        println!(
            "probe round {round}: {}",
            if diff { "diverged" } else { "agrees" }
        );
    }) {
        Some(d) => {
            report(&d);
            ExitCode::FAILURE
        }
        None => {
            println!(
                "manifests are byte-identical over {} rounds",
                ma.rounds.len()
            );
            ExitCode::SUCCESS
        }
    }
}

/// Runs one spec capturing a snapshot after every round; the snapshot
/// stream is the run's full state trajectory.
fn capture(path: &PathBuf) -> Vec<EngineSnapshot> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spec = toml::from_toml(&text)
        .unwrap_or_else(|e| panic!("{} is not a scenario spec: {e}", path.display()));
    let cfg = spec.to_config();
    let exp = Experiment::prepare(&cfg);
    let (telem, _rec) = Telemetry::recording();
    let (run, mut snapshots) = run_prepared_snapshotting(&exp, &telem, 1);
    // The capture loop stops one short of the horizon (a final-round
    // snapshot has nothing left to resume); synthesize the terminal
    // state from the finished run so the last round is bisectable too.
    snapshots.push(EngineSnapshot {
        round: cfg.rounds,
        rounds: run.manifest.rounds.clone(),
        faults: run.manifest.faults.clone(),
        metrics: run.manifest.metrics.clone(),
        ..snapshots.last().cloned().unwrap_or_else(|| {
            panic!(
                "{}: spec must run at least 2 rounds to capture",
                path.display()
            )
        })
    });
    snapshots
}

fn spec_mode(a: &PathBuf, b: &PathBuf) -> ExitCode {
    let (sa, sb) = (capture(a), capture(b));
    let len = sa.len().max(sb.len());
    let first = bisect_first(len, |i| {
        let differs = match (sa.get(i), sb.get(i)) {
            (Some(x), Some(y)) => x.to_bytes() != y.to_bytes(),
            _ => true,
        };
        println!(
            "probe round {}: {}",
            i + 1,
            if differs { "diverged" } else { "agrees" }
        );
        differs
    });
    match first {
        Some(i) => {
            match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) => {
                    let what = if x.model != y.model {
                        "model parameters"
                    } else if x.layers != y.layers {
                        "layer state"
                    } else if x.rounds != y.rounds {
                        "round records"
                    } else {
                        "accounting/metrics"
                    };
                    println!(
                        "first divergence: engine state after round {} ({what})",
                        i + 1
                    );
                }
                _ => println!("first divergence: run lengths differ at round {}", i + 1),
            }
            ExitCode::FAILURE
        }
        None => {
            println!("engine state identical after every one of {len} rounds");
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match (
        &args.manifest_a,
        &args.manifest_b,
        &args.spec_a,
        &args.spec_b,
    ) {
        (Some(a), Some(b), None, None) => manifest_mode(a, b),
        (None, None, Some(a), Some(b)) => spec_mode(a, b),
        _ => usage(),
    }
}
