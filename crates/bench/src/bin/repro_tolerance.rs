//! Reproduces the **Theorem 2 tolerance analysis** (§IV-B, §V-A) and
//! **Corollary 3** (more levels ⇒ more tolerance), and verifies the
//! 57.8125 % bound empirically: accuracy as the malicious proportion
//! crosses the bound, for 2/3/4-level hierarchies over the same 64
//! clients.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
use abd_hfl_core::run::run;
use abd_hfl_core::theory;
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(100, 30);
    let reps = args.effective_reps(3, 1);

    // --- Analytic table: Theorem 2 across levels -----------------------
    println!("## Theorem 2 — maximum tolerated Byzantine proportion (γ1 = γ2 = 25 %)\n");
    let mut rows = Vec::new();
    for level in 0..5usize {
        rows.push(vec![
            level.to_string(),
            format!(
                "{:.4}%",
                theory::theorem2_max_byzantine_ratio(0.25, 0.25, level) * 100.0
            ),
            format!(
                "{:.1}",
                theory::theorem2_max_byzantine_count(4, 4, 0.25, 0.25, level)
            ),
            theory::corollary1_level_size(4, 4, level).to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "level ℓ",
                "max ratio",
                "max count (Nt=4, m=4)",
                "level size"
            ],
            &rows
        )
    );
    println!(
        "Paper's §V-A bound at the bottom (ℓ = 2): {:.4} %\n",
        theory::paper_tolerance_bound() * 100.0
    );

    // --- Theorem 2 / Corollary 3, empirically --------------------------
    // Same 64 clients in shapes (levels, m, n_top) with n_top·m^L = 64.
    // Adversaries are placed per Definition 4 (p-ratio trees): γ1·Nt top
    // subtrees fully Byzantine, ⌊γ2·m⌋ Byzantine members per honest
    // cluster. "At bound" saturates Theorem 2 exactly; "beyond" pushes
    // one extra Byzantine member into every honest cluster, violating γ2.
    // The top level uses BRA too (Scheme 3): a validation-vote top with
    // clean test shards would rescue any topology and mask the structure.
    let shapes: [(usize, usize, usize); 3] = [(2, 16, 4), (3, 4, 4), (4, 2, 8)];

    println!("## Theorem 2 / Corollary 3 — Definition 4 placement, Type I attack\n");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for (levels, m, n_top) in shapes {
        let label = format!("{levels}-level");
        if !args.matches(&label) {
            continue;
        }
        let topo = TopologyCfg::Ecsm {
            total_levels: levels,
            m,
            n_top,
        };
        let h = topo.build(0);
        let top_byz = n_top / 4;
        let per_cluster = m / 4;
        let mut cells = vec![label.clone()];
        for (case, pc) in [("at-bound", per_cluster), ("beyond", per_cluster + 1)] {
            if pc >= m {
                cells.push("—".to_string());
                cells.push("—".to_string());
                continue;
            }
            let mask = theory::definition4_placement(&h, top_byz, pc);
            let proportion = mask.iter().filter(|b| **b).count() as f64 / mask.len() as f64;
            let mut accs = Vec::new();
            for rep in 0..reps {
                let seed = derive_seed(args.seed, 0x701 + ((rep as u64) << 16) + levels as u64);
                let mut cfg = HflConfig::paper_iid(
                    AttackCfg::Data {
                        attack: DataAttack::type_i(),
                        proportion,
                        placement: Placement::Prefix,
                    },
                    seed,
                );
                cfg.malicious_override = Some(mask.clone());
                cfg.topology = topo.clone();
                let top_f = (n_top / 4).max(1);
                cfg.levels = vec![LevelAgg::Bra(AggregatorKind::MultiKrum {
                    f: top_f,
                    m: n_top - top_f,
                })];
                let f = (m / 4).max(1);
                cfg.levels.extend(std::iter::repeat_n(
                    LevelAgg::Bra(AggregatorKind::MultiKrum { f, m: m - f }),
                    levels - 1,
                ));
                cfg.flag_level = 1;
                cfg.rounds = rounds;
                cfg.eval_every = rounds;
                cfg.data = SynthConfig {
                    train_samples: 19_200,
                    test_samples: 4_000,
                    ..SynthConfig::default()
                };
                let r = run(&cfg);
                accs.push(r.final_accuracy);
                csv.push(format!(
                    "{levels},{m},{n_top},{case},{proportion:.4},{rep},{:.4}",
                    r.final_accuracy
                ));
            }
            let mean = accs.iter().sum::<f64>() / accs.len() as f64;
            cells.push(format!("{:.1}%", proportion * 100.0));
            cells.push(pct(mean));
            eprintln!("  {label} {case} (p={proportion:.3}): {}", pct(mean));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "structure",
                "at-bound proportion",
                "at-bound accuracy",
                "beyond proportion",
                "beyond accuracy"
            ],
            &rows
        )
    );
    write_csv_or_exit(
        &args.out_dir,
        "tolerance",
        "levels,m,n_top,case,proportion,rep,final_accuracy",
        &csv,
    );
}
