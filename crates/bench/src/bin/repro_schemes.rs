//! Reproduces **Tables III / IV** — the four BRA/CBA scheme combinations,
//! measured on the same workload: final accuracy under a fixed Type I
//! attack (robustness) and total communication cost (messages / bytes).
//!
//! The paper gives these qualitatively; this harness quantifies them so
//! the ranking can be checked (Scheme 4 most robust & most expensive,
//! Scheme 3 cheapest).

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::run::run;
use abd_hfl_core::scheme::Scheme;
use hfl_attacks::{DataAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_consensus::ConsensusKind;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(100, 30);
    let reps = args.effective_reps(3, 1);
    let attack_p = 0.4;
    eprintln!("Scheme comparison: Type I at {attack_p}, {rounds} rounds × {reps} reps");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for scheme in Scheme::ALL {
        let label = format!("{scheme:?}");
        if !args.matches(&label) {
            continue;
        }
        let mut accs = Vec::new();
        let mut msgs = Vec::new();
        let mut bytes = Vec::new();
        for rep in 0..reps {
            let seed = derive_seed(args.seed, 0x5C4E + ((rep as u64) << 8));
            let mut cfg = HflConfig::paper_iid(
                AttackCfg::Data {
                    attack: DataAttack::type_i(),
                    proportion: attack_p,
                    placement: Placement::Prefix,
                },
                seed,
            );
            cfg.levels = scheme.level_aggs(
                3,
                AggregatorKind::MultiKrum { f: 1, m: 3 },
                ConsensusKind::VoteMajority,
            );
            cfg.rounds = rounds;
            cfg.eval_every = rounds;
            cfg.data = SynthConfig {
                train_samples: 19_200,
                test_samples: 4_000,
                ..SynthConfig::default()
            };
            let r = run(&cfg);
            accs.push(r.final_accuracy);
            msgs.push(r.messages as f64);
            bytes.push(r.bytes as f64);
            csv.push(format!(
                "{label},{rep},{:.4},{},{}",
                r.final_accuracy, r.messages, r.bytes
            ));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(vec![
            scheme.name().to_string(),
            pct(mean(&accs)),
            format!("{:.0}", mean(&msgs)),
            format!("{:.1} MiB", mean(&bytes) / (1024.0 * 1024.0)),
            scheme.robustness_rank().to_string(),
            scheme.cost_rank().to_string(),
        ]);
        eprintln!("  {}: acc {}", scheme.name(), pct(mean(&accs)));
    }
    println!("\n## Tables III/IV — scheme combinations (Type I @ 40 % malicious)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scheme",
                "accuracy",
                "messages",
                "bytes",
                "robustness rank (Table IV)",
                "cost rank (Table IV)"
            ],
            &rows
        )
    );
    write_csv_or_exit(
        &args.out_dir,
        "schemes",
        "scheme,rep,final_accuracy,messages,bytes",
        &csv,
    );
}
