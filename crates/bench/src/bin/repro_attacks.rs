//! Reproduces **Table I** quantitatively: the damage each Byzantine
//! attack type inflicts on an *undefended* (plain-FedAvg) vanilla FL run
//! at 30 % malicious — demonstrating every attack implementation actually
//! attacks.

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::vanilla::run_vanilla;
use hfl_attacks::{DataAttack, ModelAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit};
use hfl_bench::Args;
use hfl_ml::rng::derive_seed;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn attacks() -> Vec<(&'static str, AttackCfg)> {
    let p = 0.3;
    let place = Placement::Prefix;
    vec![
        ("none", AttackCfg::None),
        (
            "label-flip-all-9 (Type I)",
            AttackCfg::Data {
                attack: DataAttack::type_i(),
                proportion: p,
                placement: place,
            },
        ),
        (
            "label-flip-random (Type II)",
            AttackCfg::Data {
                attack: DataAttack::type_ii(),
                proportion: p,
                placement: place,
            },
        ),
        (
            "feature-noise",
            AttackCfg::Data {
                attack: DataAttack::FeatureNoise { std: 4.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "backdoor-trigger",
            AttackCfg::Data {
                attack: DataAttack::BackdoorTrigger {
                    offset: 0,
                    width: 8,
                    value: 6.0,
                    target: 7,
                    fraction: 0.5,
                },
                proportion: p,
                placement: place,
            },
        ),
        (
            "sign-flip",
            AttackCfg::Model {
                attack: ModelAttack::SignFlip { scale: 4.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "gaussian-noise",
            AttackCfg::Model {
                attack: ModelAttack::GaussianNoise { std: 2.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "ALIE",
            AttackCfg::Model {
                attack: ModelAttack::Alie { z: 2.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "IPM",
            AttackCfg::Model {
                attack: ModelAttack::Ipm { epsilon: 0.8 },
                proportion: p,
                placement: place,
            },
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(100, 30);
    eprintln!("Attack impact under undefended FedAvg, 30 % malicious, {rounds} rounds");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, attack) in attacks() {
        if !args.matches(name) {
            continue;
        }
        let seed = derive_seed(args.seed, 0xA77C);
        let mut cfg = HflConfig::paper_iid(attack, seed);
        cfg.rounds = rounds;
        cfg.eval_every = rounds;
        cfg.data = SynthConfig {
            train_samples: 19_200,
            test_samples: 4_000,
            ..SynthConfig::default()
        };
        let r = run_vanilla(&cfg, AggregatorKind::FedAvg);
        rows.push(vec![name.to_string(), pct(r.final_accuracy)]);
        csv.push(format!("{name},{:.4}", r.final_accuracy));
        eprintln!("  {name}: {}", pct(r.final_accuracy));
    }
    println!("\n## Table I attacks — damage to undefended FedAvg (30 % malicious)\n");
    println!("{}", markdown_table(&["attack", "final accuracy"], &rows));
    write_csv_or_exit(&args.out_dir, "attacks", "attack,final_accuracy", &csv);

    // --- Backdoor deep-dive: clean accuracy hides the backdoor; the
    // attack-success rate (ASR) exposes it, and the hierarchy suppresses
    // it. ---------------------------------------------------------------
    if args.matches("backdoor") {
        backdoor_deep_dive(&args, rounds);
    }
}

fn backdoor_deep_dive(args: &Args, rounds: usize) {
    use abd_hfl_core::engine::{CostCounters, RoundEngine};
    use abd_hfl_core::runner::Experiment;
    use hfl_ml::metrics::backdoor_success_rate;

    let (offset, width, value, target) = (0usize, 8usize, 6.0f32, 7u8);
    let attack = AttackCfg::Data {
        attack: DataAttack::BackdoorTrigger {
            offset,
            width,
            value,
            target,
            fraction: 0.5,
        },
        proportion: 0.3,
        placement: Placement::Prefix,
    };
    let seed = derive_seed(args.seed, 0xBD02);
    let mut cfg = HflConfig::paper_iid(attack, seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.data = SynthConfig {
        train_samples: 19_200,
        test_samples: 4_000,
        ..SynthConfig::default()
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, abd) in [("vanilla FedAvg", false), ("ABD-HFL (scheme 1)", true)] {
        // Drive the rounds manually so the final global parameters are in
        // hand for the ASR probe (the run_* wrappers only report
        // accuracy).
        let exp = Experiment::prepare(&cfg);
        let mut engine = RoundEngine::for_experiment(&exp);
        let mut global = exp.template.params().to_vec();
        let mut cost = CostCounters::default();
        let telem = hfl_telemetry::Telemetry::disabled();
        for round in 0..cfg.rounds {
            let updates = exp.train_round(&global, round);
            global = if abd {
                engine.aggregate_round(
                    &updates,
                    round,
                    &mut cost,
                    &telem,
                    &mut Vec::new(),
                    &mut Vec::new(),
                )
            } else {
                let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
                AggregatorKind::FedAvg.build().aggregate(&refs, None)
            };
        }
        let clean = exp.evaluate(&global);
        let mut model = exp.template.clone_box();
        model.set_params(&global);
        let asr =
            backdoor_success_rate(model.as_ref(), &exp.task.test, offset, width, value, target);
        rows.push(vec![name.to_string(), pct(clean), pct(asr)]);
        csv.push(format!("{name},{clean:.4},{asr:.4}"));
        eprintln!("  backdoor/{name}: clean {} ASR {}", pct(clean), pct(asr));
    }
    println!("\n## Backdoor deep-dive — clean accuracy vs attack-success rate\n");
    println!(
        "{}",
        markdown_table(&["model", "clean accuracy", "attack-success rate"], &rows)
    );
    write_csv_or_exit(
        &args.out_dir,
        "backdoor",
        "model,clean_accuracy,attack_success_rate",
        &csv,
    );
}
