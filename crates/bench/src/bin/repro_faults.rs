//! Reproduces the **fault-tolerance sweep**: final accuracy and
//! availability of ABD-HFL under deterministic crash faults, across
//! crash severity × quorum fraction φ.
//!
//! Scenarios (all faults strike at round 5 of the paper's IID ECSM
//! topology, 64 clients in clusters of 4 with Multi-Krum f = 1):
//!
//! * `none`       — fault-free baseline;
//! * `crash-f`    — f = 1 follower crash-stopped in every bottom cluster;
//! * `leader+f`   — a bottom-cluster *leader* killed (deputy promotion)
//!   on top of the f-follower crashes;
//! * `crash-2f`   — 2f = 2 followers crash-stopped per bottom cluster,
//!   beyond the Multi-Krum assumption.
//!
//! Availability is the fraction of expected bottom-level updates that
//! reached their aggregation: `1 − faulted / (clients · rounds)`.
//!
//! Two invocations with the same `--seed` produce byte-identical
//! manifest logs (`faults.manifests.jsonl`) — the determinism contract
//! CI checks by diffing.

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_simnet::Hierarchy;
use hfl_telemetry::Telemetry;

/// The round every scenario's faults strike at.
const CRASH_ROUND: usize = 5;

/// Crash-stops the first `count` followers (members after the leader) of
/// every bottom cluster.
fn crash_followers(mut plan: FaultPlan, h: &Hierarchy, count: usize) -> FaultPlan {
    let bottom = h.bottom_level();
    for cluster in &h.level(bottom).clusters {
        for &m in cluster.members.iter().skip(1).take(count) {
            plan = plan.crash_stop(CRASH_ROUND, m);
        }
    }
    plan
}

/// The fault plan for a named scenario, `None` for the clean baseline.
fn scenario_plan(name: &str, h: &Hierarchy) -> Option<FaultPlan> {
    match name {
        "none" => None,
        "crash-f" => Some(crash_followers(FaultPlan::new(), h, 1)),
        "leader+f" => Some(crash_followers(
            // Kill the leader of bottom cluster 1: its deputy must take
            // over collection for the rest of the run.
            FaultPlan::new().kill_leader(CRASH_ROUND, h.bottom_level(), 1, None),
            h,
            1,
        )),
        "crash-2f" => Some(crash_followers(FaultPlan::new(), h, 2)),
        other => unreachable!("unknown scenario {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(60, 12);

    println!("## Fault tolerance — crash severity × quorum φ (faults at round {CRASH_ROUND})\n");

    let scenarios = ["none", "crash-f", "leader+f", "crash-2f"];
    let quorums = [1.0, 0.75, 0.5];

    let mut csv = Vec::new();
    let mut manifests = Vec::new();
    let mut rows = Vec::new();
    for scenario in scenarios {
        let mut cells = vec![scenario.to_string()];
        for phi in quorums {
            let label = format!("{scenario}/phi{phi}");
            if !args.matches(&label) {
                cells.push("—".to_string());
                continue;
            }
            let mut cfg = HflConfig::paper_iid(AttackCfg::None, args.seed);
            cfg.rounds = rounds;
            cfg.eval_every = rounds;
            cfg.quorum = phi;
            cfg.data = SynthConfig {
                train_samples: 19_200,
                test_samples: 4_000,
                ..SynthConfig::default()
            };
            let h = cfg.topology.build(cfg.seed);
            cfg.faults = scenario_plan(scenario, &h);
            let exp = match Experiment::try_prepare(&cfg) {
                Ok(exp) => exp,
                Err(e) => {
                    eprintln!("  {label}: skipped ({e})");
                    cells.push("invalid".to_string());
                    continue;
                }
            };
            let run = run_prepared_with(&exp, &Telemetry::disabled());
            let clients = h.num_clients();
            let availability = 1.0 - run.result.faulted_total as f64 / (clients * rounds) as f64;
            let fault_events = run.manifest.faults.len();
            eprintln!(
                "  {label}: acc {} avail {:.3} ({} fault log entries)",
                pct(run.result.final_accuracy),
                availability,
                fault_events
            );
            csv.push(format!(
                "{scenario},{phi},{rounds},{:.4},{:.4},{},{}",
                run.result.final_accuracy, availability, run.result.faulted_total, fault_events
            ));
            cells.push(format!(
                "{} / {:.1}%",
                pct(run.result.final_accuracy),
                availability * 100.0
            ));
            manifests.push(run.manifest);
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "scenario (acc / availability)",
                "φ = 1.0",
                "φ = 0.75",
                "φ = 0.5"
            ],
            &rows
        )
    );
    write_csv_or_exit(
        &args.out_dir,
        "faults",
        "scenario,quorum,rounds,final_accuracy,availability,faulted_total,fault_events",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "faults", &manifests);
}
