//! Reproduces the **adaptive arms-race sweep**: final accuracy of
//! ABD-HFL under static vs *adaptive* model-poisoning, with and without
//! the defense-side suspicion/quarantine layer, plus the two
//! protocol-level behaviors (leader equivocation, selective
//! withholding).
//!
//! Grid (25 % malicious, prefix placement, paper IID topology — 64
//! clients in clusters of 4):
//!
//! * aggregator ∈ { Multi-Krum f = 1 m = 3, trimmed-mean 25 % } at every
//!   level;
//! * attack ∈ { ALIE z = 1.5, adaptive ALIE, IPM ε = 0.5, adaptive IPM }
//!   — the adaptive variants bisect their magnitude against the
//!   defense's acceptance feedback each round;
//! * suspicion ∈ { off, on } (defaults: decay 0.8, quarantine 2.2).
//!
//! Two protocol scenarios ride along: `equivocate` (malicious bottom
//! leaders send a flipped partial upward; the echo audit must convict
//! them) and `withhold` at φ = 0.75 with one malicious follower per
//! cluster (members drop their update exactly when the quorum still
//! forms — impossible at φ = 1).
//!
//! The printed summary reports, per aggregator × family, how much more
//! the adaptive attack degrades accuracy than the static one, and what
//! fraction of that gap the suspicion layer recovers.
//!
//! Two invocations with the same `--seed` produce byte-identical
//! manifest logs (`adaptive.manifests.jsonl`) — the determinism contract
//! CI checks by diffing.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_attacks::{AdaptiveAttack, ModelAttack, Placement, ProtocolAttack};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_ml::synth::SynthConfig;
use hfl_robust::{AggregatorKind, SuspicionConfig};
use hfl_telemetry::Telemetry;

/// Malicious fraction: 16 of 64 clients, so the first 4 bottom clusters
/// (prefix placement) are fully malicious — leaders included, which is
/// what makes the equivocation scenario bite.
const PROPORTION: f64 = 0.25;

fn aggregators() -> Vec<(&'static str, AggregatorKind)> {
    vec![
        ("multikrum", AggregatorKind::MultiKrum { f: 1, m: 3 }),
        ("trimmed", AggregatorKind::TrimmedMean { ratio: 0.25 }),
    ]
}

fn attacks() -> Vec<(&'static str, AttackCfg)> {
    let place = |attack| AttackCfg::Model {
        attack,
        proportion: PROPORTION,
        placement: Placement::Prefix,
    };
    let adapt = |attack| AttackCfg::Adaptive {
        attack,
        proportion: PROPORTION,
        placement: Placement::Prefix,
    };
    vec![
        ("alie-static", place(ModelAttack::Alie { z: 1.5 })),
        ("alie-adaptive", adapt(AdaptiveAttack::alie_default())),
        ("ipm-static", place(ModelAttack::Ipm { epsilon: 0.5 })),
        ("ipm-adaptive", adapt(AdaptiveAttack::ipm_default())),
    ]
}

fn base_cfg(seed: u64, rounds: usize, agg: &AggregatorKind) -> HflConfig {
    let mut cfg = HflConfig::paper_iid(AttackCfg::None, seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.data = SynthConfig {
        train_samples: 19_200,
        test_samples: 4_000,
        ..SynthConfig::default()
    };
    cfg.levels = vec![
        LevelAgg::Bra(agg.clone()),
        LevelAgg::Bra(agg.clone()),
        LevelAgg::Bra(agg.clone()),
    ];
    cfg
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(60, 12);

    println!(
        "## Adaptive arms race — attack × aggregator × suspicion \
         ({:.0}% malicious, prefix placement)\n",
        PROPORTION * 100.0
    );

    let mut csv = Vec::new();
    let mut manifests = Vec::new();
    let mut rows = Vec::new();
    // (agg, attack, suspicion) -> final accuracy, for the gap summary.
    let mut acc: Vec<(String, f64)> = Vec::new();

    for (agg_name, agg) in aggregators() {
        for (atk_name, atk) in attacks() {
            let mut cells = vec![format!("{agg_name}/{atk_name}")];
            for suspicion in [false, true] {
                let susp_name = if suspicion { "on" } else { "off" };
                let label = format!("{agg_name}/{atk_name}/susp-{susp_name}");
                if !args.matches(&label) {
                    cells.push("—".to_string());
                    continue;
                }
                let mut cfg = base_cfg(args.seed, rounds, &agg);
                cfg.attack = atk.clone();
                if suspicion {
                    cfg.suspicion = Some(SuspicionConfig::default());
                }
                let exp = match Experiment::try_prepare(&cfg) {
                    Ok(exp) => exp,
                    Err(e) => {
                        eprintln!("  {label}: skipped ({e})");
                        cells.push("invalid".to_string());
                        continue;
                    }
                };
                let run = run_prepared_with(&exp, &Telemetry::disabled());
                eprintln!(
                    "  {label}: acc {} (quarantined {})",
                    pct(run.result.final_accuracy),
                    run.result.quarantined_total
                );
                csv.push(format!(
                    "{agg_name},{atk_name},{susp_name},{rounds},{:.4},{},{}",
                    run.result.final_accuracy,
                    run.result.quarantined_total,
                    run.result.withheld_total
                ));
                cells.push(pct(run.result.final_accuracy));
                acc.push((label, run.result.final_accuracy));
                manifests.push(run.manifest);
            }
            rows.push(cells);
        }
    }

    // Protocol-level scenarios.
    for proto in ["equivocate", "withhold"] {
        let label = format!("proto/{proto}");
        let mut cells = vec![label.clone()];
        if !args.matches(&label) {
            cells.push("—".to_string());
            cells.push("—".to_string());
            rows.push(cells);
            continue;
        }
        let mut cfg = base_cfg(args.seed, rounds, &AggregatorKind::MultiKrum { f: 1, m: 3 });
        cfg.attack = AttackCfg::Model {
            attack: ModelAttack::Alie { z: 1.5 },
            proportion: PROPORTION,
            placement: Placement::Prefix,
        };
        match proto {
            "equivocate" => {
                cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
                cfg.suspicion = Some(SuspicionConfig::default());
            }
            "withhold" => {
                cfg.protocol_attack = Some(ProtocolAttack::Withhold);
                cfg.quorum = 0.75;
                // One malicious *follower* per 4-cluster (clients 1, 5,
                // 9, …). A fully malicious prefix cluster could never
                // withhold without sinking its own quorum, and spread
                // placement lands on ids 0, 4, 8, … — all leaders,
                // which the pivotal rule also excludes.
                let n = cfg.topology.build(cfg.seed).num_clients();
                cfg.malicious_override = Some((0..n).map(|c| c % 4 == 1).collect());
            }
            other => unreachable!("unknown protocol scenario {other}"),
        }
        let exp = match Experiment::try_prepare(&cfg) {
            Ok(exp) => exp,
            Err(e) => {
                eprintln!("  {label}: skipped ({e})");
                continue;
            }
        };
        let run = run_prepared_with(&exp, &Telemetry::disabled());
        eprintln!(
            "  {label}: acc {} (quarantined {}, withheld {})",
            pct(run.result.final_accuracy),
            run.result.quarantined_total,
            run.result.withheld_total
        );
        csv.push(format!(
            "proto,{proto},on,{rounds},{:.4},{},{}",
            run.result.final_accuracy, run.result.quarantined_total, run.result.withheld_total
        ));
        cells.push(pct(run.result.final_accuracy));
        cells.push(format!(
            "q={} w={}",
            run.result.quarantined_total, run.result.withheld_total
        ));
        manifests.push(run.manifest);
        rows.push(cells);
    }

    println!(
        "{}",
        markdown_table(&["scenario", "suspicion off", "suspicion on"], &rows)
    );

    // Gap summary: adaptive-over-static degradation and suspicion
    // recovery, per aggregator × attack family.
    let get = |label: &str| acc.iter().find(|(l, _)| l == label).map(|(_, a)| *a);
    println!("\n### Adaptive gap and suspicion recovery\n");
    for (agg_name, _) in aggregators() {
        for family in ["alie", "ipm"] {
            let (Some(st), Some(ad), Some(ad_susp)) = (
                get(&format!("{agg_name}/{family}-static/susp-off")),
                get(&format!("{agg_name}/{family}-adaptive/susp-off")),
                get(&format!("{agg_name}/{family}-adaptive/susp-on")),
            ) else {
                continue;
            };
            let gap = st - ad;
            let recovered = ad_susp - ad;
            let frac = if gap > 1e-4 {
                format!("{:.0}% of the gap", recovered / gap * 100.0)
            } else {
                "no gap to recover".to_string()
            };
            println!(
                "- {agg_name}/{family}: static {} → adaptive {} (gap {:+.1} pts); \
                 suspicion recovers {:+.1} pts ({frac})",
                pct(st),
                pct(ad),
                -gap * 100.0,
                recovered * 100.0,
            );
        }
    }

    write_csv_or_exit(
        &args.out_dir,
        "adaptive",
        "aggregator,attack,suspicion,rounds,final_accuracy,quarantined_total,withheld_total",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "adaptive", &manifests);
}
