//! Reproduces the **pipeline learning workflow** analysis (§III-D,
//! Fig. 2, Eq. 2–3, Table VIII / Appendix E): the efficiency indicator
//! ν = (σp + σg)/σ measured on the event simulator, swept over
//! * the flag level ℓ_F, and
//! * the four delay regimes of Table VIII (small/big partial-aggregation
//!   delay τ′ × small/big global-aggregation delay τg).

use abd_hfl_core::config::{AttackCfg, HflConfig};
use abd_hfl_core::pipeline::PipelineConfig;
use abd_hfl_core::run::RunOptions;
use hfl_bench::report::{markdown_table, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_ml::synth::SynthConfig;
use hfl_simnet::DelayModel;

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(8, 3);
    eprintln!("Pipeline efficiency: {rounds} simulated rounds per cell");

    let mut cfg = HflConfig::paper_iid(AttackCfg::None, args.seed);
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 1_000,
        ..SynthConfig::default()
    };
    cfg.rounds = rounds;

    // --- Sweep 1: flag level (3-level hierarchy: ℓF ∈ {1, 2}) ----------
    println!("## Flag-level trade-off (Eq. 3): σw vs ν\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut manifests = Vec::new();
    for flag in [1usize, 2] {
        let mut c = cfg.clone();
        c.flag_level = flag;
        let pcfg = PipelineConfig {
            rounds,
            ..PipelineConfig::default()
        };
        let (res, mut manifest) = RunOptions::pipeline(&pcfg).run(&c).into_pipeline();
        manifest.label = format!("efficiency/flag{flag}");
        manifests.push(manifest);
        let mean = |f: fn(&abd_hfl_core::pipeline::RoundTiming) -> f64| {
            res.rounds.iter().map(f).sum::<f64>() / res.rounds.len().max(1) as f64
        };
        rows.push(vec![
            format!("ℓF = {flag}"),
            format!("{:.1} ms", mean(|r| r.sigma_w) * 1e3),
            format!("{:.1} ms", mean(|r| r.sigma) * 1e3),
            format!("{:.3}", mean(|r| r.nu)),
            format!("{:.1} ms", res.mean_period * 1e3),
        ]);
        for r in &res.rounds {
            csv.push(format!(
                "flag,{flag},default,{},{:.6},{:.6},{:.6},{:.6}",
                r.round, r.sigma_w, r.sigma, r.sigma_pg, r.nu
            ));
        }
        eprintln!("  flag {flag}: ν = {:.3}", mean(|r| r.nu));
    }
    println!(
        "{}",
        markdown_table(&["flag level", "σw", "σ", "ν", "round period"], &rows)
    );

    // --- Sweep 2: Table VIII delay regimes ------------------------------
    println!("\n## Table VIII — delay regimes (big/small τ′ × τg)\n");
    let small = DelayModel::Constant { micros: 1_000 };
    let big = DelayModel::Constant { micros: 40_000 };
    let mut rows = Vec::new();
    for (name, agg, cba_factor) in [
        ("small τ′ – small τg", small.clone(), 2.0),
        ("small τ′ – big τg", small.clone(), 80.0),
        ("big τ′ – small τg", big.clone(), 1.0),
        ("big τ′ – big τg", big.clone(), 4.0),
    ] {
        if !args.matches(name) {
            continue;
        }
        let pcfg = PipelineConfig {
            agg_delay: agg,
            cba_delay_factor: cba_factor,
            rounds,
            ..PipelineConfig::default()
        };
        let res = RunOptions::pipeline(&pcfg).run(&cfg).into_pipeline().0;
        let mean_nu = res.rounds.iter().map(|r| r.nu).sum::<f64>() / res.rounds.len().max(1) as f64;
        let mean_w =
            res.rounds.iter().map(|r| r.sigma_w).sum::<f64>() / res.rounds.len().max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1} ms", mean_w * 1e3),
            format!("{:.3}", mean_nu),
            format!("{:.1} ms", res.mean_period * 1e3),
        ]);
        for r in &res.rounds {
            csv.push(format!(
                "regime,{},{name},{},{:.6},{:.6},{:.6},{:.6}",
                cfg.flag_level, r.round, r.sigma_w, r.sigma, r.sigma_pg, r.nu
            ));
        }
        eprintln!("  {name}: ν = {mean_nu:.3}");
    }
    println!(
        "{}",
        markdown_table(&["delay regime", "σw", "ν", "round period"], &rows)
    );

    // --- Sweep 3: Appendix E — leaf-uplink bandwidth -------------------
    println!("\n## Appendix E — leaf-device uplink bandwidth\n");
    let mut rows = Vec::new();
    for (name, leaf) in [
        ("uniform links", None),
        (
            "leaf uplink 5× slower",
            Some(DelayModel::Uniform {
                lo: 5_000,
                hi: 25_000,
            }),
        ),
        (
            "leaf uplink 20× slower",
            Some(DelayModel::Uniform {
                lo: 20_000,
                hi: 100_000,
            }),
        ),
    ] {
        if !args.matches(name) {
            continue;
        }
        let pcfg = PipelineConfig {
            rounds,
            leaf_uplink: leaf,
            ..PipelineConfig::default()
        };
        let res = RunOptions::pipeline(&pcfg).run(&cfg).into_pipeline().0;
        let nrounds = res.rounds.len().max(1) as f64;
        let mean_w = res.rounds.iter().map(|r| r.sigma_w).sum::<f64>() / nrounds;
        let mean_nu = res.rounds.iter().map(|r| r.nu).sum::<f64>() / nrounds;
        rows.push(vec![
            name.to_string(),
            format!("{:.1} ms", mean_w * 1e3),
            format!("{mean_nu:.3}"),
            format!("{:.1} ms", res.mean_period * 1e3),
        ]);
        for r in &res.rounds {
            csv.push(format!(
                "bandwidth,{},{name},{},{:.6},{:.6},{:.6},{:.6}",
                cfg.flag_level, r.round, r.sigma_w, r.sigma, r.sigma_pg, r.nu
            ));
        }
        eprintln!("  bandwidth/{name}: σw {:.1} ms", mean_w * 1e3);
    }
    println!(
        "{}",
        markdown_table(&["leaf uplink", "σw", "ν", "round period"], &rows)
    );

    write_csv_or_exit(
        &args.out_dir,
        "efficiency",
        "sweep,flag_or_level,regime,round,sigma_w,sigma,sigma_pg,nu",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "efficiency", &manifests);
}
