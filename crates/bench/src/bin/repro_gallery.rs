//! Attack–defense gallery: the full static-attack × composed-defense ×
//! data-distribution accuracy grid (DESIGN.md §13).
//!
//! Rows pair every gallery attack family (mimic, scaling, min-max,
//! min-sum, plus the clean baseline) with undefended averaging, the
//! centered-clipping rule, and the two pre-aggregation compositions
//! (bucketing → median, NNM → Krum), each under IID and Dirichlet-α
//! partitions. Two invocations with the same `--seed` produce
//! byte-identical manifest logs (`gallery.manifests.jsonl`) — the
//! determinism contract CI diffs.

use abd_hfl_core::config::{AttackCfg, DataDistribution, HflConfig, LevelAgg};
use abd_hfl_core::runner::{run_prepared_with, Experiment};
use hfl_attacks::{ModelAttack, Placement};
use hfl_bench::report::{markdown_table, pct, write_csv_or_exit, write_manifests_or_exit};
use hfl_bench::Args;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;
use hfl_telemetry::Telemetry;

/// The Dirichlet concentration of the heterogeneous grid half.
const ALPHA: f64 = 0.5;

fn attacks() -> Vec<(&'static str, AttackCfg)> {
    let model = |attack: ModelAttack| AttackCfg::Model {
        attack,
        proportion: 0.25,
        placement: Placement::Prefix,
    };
    vec![
        ("none", AttackCfg::None),
        ("mimic", model(ModelAttack::Mimic { victim: 0 })),
        ("scaling", model(ModelAttack::Scaling { factor: -10.0 })),
        ("minmax", model(ModelAttack::MinMax)),
        ("minsum", model(ModelAttack::MinSum)),
    ]
}

fn defenses() -> Vec<(&'static str, AggregatorKind)> {
    vec![
        ("fedavg", AggregatorKind::FedAvg),
        (
            "centered_clip",
            AggregatorKind::CenteredClip { tau: 2.0, iters: 3 },
        ),
        (
            "bucket2+median",
            AggregatorKind::Bucketing {
                s: 2,
                inner: Box::new(AggregatorKind::Median),
            },
        ),
        (
            "nnm3+krum",
            AggregatorKind::Nnm {
                k: 3,
                inner: Box::new(AggregatorKind::Krum { f: 1 }),
            },
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let rounds = args.effective_rounds(8, 3);
    let mut csv = Vec::new();
    let mut manifests = Vec::new();
    let mut rows = Vec::new();

    println!("## Attack–defense gallery — attack × defense × distribution\n");
    for (dist_name, dist) in [
        ("iid", DataDistribution::Iid),
        ("dirichlet", DataDistribution::Dirichlet { alpha: ALPHA }),
    ] {
        for (attack_name, attack) in attacks() {
            let mut row = vec![dist_name.to_string(), attack_name.to_string()];
            for (defense_name, kind) in defenses() {
                let label = format!("{attack_name}/{defense_name}/{dist_name}");
                if !args.matches(&label) {
                    row.push("-".into());
                    continue;
                }
                let mut cfg = HflConfig::quick(attack.clone(), args.seed);
                cfg.rounds = rounds;
                cfg.eval_every = rounds;
                cfg.data = SynthConfig {
                    train_samples: 3_200,
                    test_samples: 800,
                    ..SynthConfig::default()
                };
                cfg.distribution = dist.clone();
                // All-BRA levels: the paper's top-level consensus vote
                // would exclude poisoned proposals outright and mask
                // the aggregation-level arms race this grid measures.
                cfg.levels = vec![LevelAgg::Bra(kind.clone()); 3];
                let exp = Experiment::prepare(&cfg);
                let (telem, _rec) = Telemetry::recording();
                let run = run_prepared_with(&exp, &telem);
                eprintln!("  {label}: acc {}", pct(run.result.final_accuracy));
                csv.push(format!(
                    "{attack_name},{defense_name},{dist_name},{:.4}",
                    run.result.final_accuracy
                ));
                row.push(pct(run.result.final_accuracy));
                manifests.push(run.manifest);
            }
            rows.push(row);
        }
    }

    let headers: Vec<String> = ["distribution", "attack"]
        .iter()
        .map(|s| s.to_string())
        .chain(defenses().iter().map(|(name, _)| name.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", markdown_table(&header_refs, &rows));

    write_csv_or_exit(
        &args.out_dir,
        "gallery",
        "attack,defense,distribution,final_accuracy",
        &csv,
    );
    write_manifests_or_exit(&args.out_dir, "gallery", &manifests);
}
