//! The no-regression gate between two bench documents: joins the
//! `kernels` arrays of a *before* file (`BENCH_9.json`, hot kernels
//! timed through the retained naive references) and an *after* file
//! (`BENCH_10.json`, the optimized hot paths) on kernel name, and
//! hard-fails when any shared kernel's `ns_per_op` regressed by more
//! than 25% — or when the after file's `steady_allocs_per_round` is
//! not exactly zero.
//!
//! ```sh
//! bench_compare <before.json> <after.json>
//! ```
//!
//! `scripts/ci.sh` runs this right after `perf_baseline --quick`. The
//! 25% budget absorbs timer noise on loaded CI machines while still
//! catching a real hot-path regression (the overhaul's speedups are
//! multiples, not percents); a sub-1.5× Krum-family speedup is
//! reported as a warning rather than a failure so machine load cannot
//! flake the tier-1 gate.

use std::process::ExitCode;

use hfl_telemetry::Json;

/// Extracts `(name, ns_per_op)` for every row of the document's
/// `kernels` array.
fn kernel_times(doc: &Json, path: &str) -> Vec<(String, u64)> {
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing kernels array"));
    kernels
        .iter()
        .map(|row| {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{path}: kernel row without a name"))
                .to_string();
            let ns = row
                .get("ns_per_op")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{path}: kernel {name} without ns_per_op"));
            assert!(ns > 0, "{path}: kernel {name} timed at zero");
            (name, ns)
        })
        .collect()
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e:?}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let [before_path, after_path] = argv.as_slice() else {
        eprintln!("usage: bench_compare <before.json> <after.json>");
        return ExitCode::FAILURE;
    };
    let before_doc = load(before_path);
    let after_doc = load(after_path);
    let before = kernel_times(&before_doc, before_path);
    let after = kernel_times(&after_doc, after_path);

    let mut failures = Vec::new();
    let mut shared = 0usize;
    for (name, after_ns) in &after {
        let Some((_, before_ns)) = before.iter().find(|(n, _)| n == name) else {
            continue;
        };
        shared += 1;
        let ratio = *after_ns as f64 / *before_ns as f64;
        println!(
            "kernel {name}: before {before_ns} ns/op, after {after_ns} ns/op \
             ({:.2}x speedup)",
            1.0 / ratio
        );
        if ratio > 1.25 {
            failures.push(format!(
                "kernel {name} regressed {:.0}% (before {before_ns} ns/op, \
                 after {after_ns} ns/op; budget is 25%)",
                (ratio - 1.0) * 100.0
            ));
        }
        if name == "krum_scores" && ratio > 1.0 / 1.5 {
            eprintln!(
                "warning: Krum-family scoring speedup {:.2}x is below the \
                 expected 1.5x (machine load?)",
                1.0 / ratio
            );
        }
    }
    if shared == 0 {
        failures.push(format!(
            "no kernel names shared between {before_path} and {after_path} — \
             the join is vacuous, nothing was compared"
        ));
    }

    // The after file carries the steady-state allocation count; zero is
    // a hard invariant of the workspace arena, not a perf number, so it
    // gates unconditionally.
    let steady = after_doc
        .get("steady_allocs_per_round")
        .and_then(Json::as_u64);
    match steady {
        Some(0) => println!("steady-state allocations per round: 0"),
        Some(n) => failures.push(format!(
            "steady_allocs_per_round is {n}, the workspace arena must absorb \
             every steady-state round allocation"
        )),
        None => failures.push(format!("{after_path}: missing steady_allocs_per_round")),
    }

    if failures.is_empty() {
        println!("bench_compare: {shared} shared kernels within the 25% budget");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_compare FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
