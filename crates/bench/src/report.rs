//! Report emission: CSV files and run manifests under the output
//! directory plus markdown tables on stdout (the format EXPERIMENTS.md
//! quotes).

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use hfl_telemetry::manifest::RunManifest;

/// Writes CSV rows (with a header) to `dir/name.csv`, creating `dir`.
/// Returns the written path; I/O failures are the caller's to report
/// (the `repro_*` binaries use [`write_csv_or_exit`]).
pub fn write_csv(dir: &str, name: &str, header: &str, rows: &[String]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(path)
}

/// [`write_csv`] for harness binaries: prints the written path on
/// success; on failure reports which path could not be written and exits
/// non-zero.
pub fn write_csv_or_exit(dir: &str, name: &str, header: &str, rows: &[String]) -> PathBuf {
    match write_csv(dir, name, header, rows) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            path
        }
        Err(e) => {
            eprintln!("error: could not write {dir}/{name}.csv: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes run manifests to `dir/name.manifests.jsonl` for harness
/// binaries: prints the written path on success; exits non-zero with the
/// path on failure.
pub fn write_manifests_or_exit(dir: &str, name: &str, manifests: &[RunManifest]) -> PathBuf {
    match hfl_telemetry::export::write_manifests_jsonl(Path::new(dir), name, manifests) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            path
        }
        Err(e) => {
            eprintln!("error: could not write {dir}/{name}.manifests.jsonl: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    assert!(!headers.is_empty(), "table needs headers");
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats an accuracy as the paper does ("89.9%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a mean ± CI pair.
pub fn pct_ci(mean: f64, ci: f64) -> String {
    format!("{:.1}%±{:.1}", mean * 100.0, ci * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8991), "89.9%");
        assert_eq!(pct_ci(0.8991, 0.012), "89.9%±1.2");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("hfl_bench_test_csv");
        let dir_s = dir.to_str().unwrap();
        let path = write_csv(dir_s, "t", "x,y", &["1,2".to_string()]).unwrap();
        assert_eq!(path, dir.join("t.csv"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_into_unwritable_dir_is_an_error() {
        // procfs rejects mkdir, so this surfaces as Err, not a panic.
        assert!(write_csv("/proc/not-writable", "t", "h", &[]).is_err());
    }
}
