//! Report emission: CSV files under the output directory plus markdown
//! tables on stdout (the format EXPERIMENTS.md quotes).

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes CSV rows (with a header) to `dir/name.csv`, creating `dir`.
///
/// # Panics
/// On I/O failure (harness binaries fail fast).
pub fn write_csv(dir: &str, name: &str, header: &str, rows: &[String]) {
    fs::create_dir_all(dir).expect("cannot create output directory");
    let path = Path::new(dir).join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(f, "{header}").expect("CSV write failed");
    for r in rows {
        writeln!(f, "{r}").expect("CSV write failed");
    }
    eprintln!("wrote {}", path.display());
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    assert!(!headers.is_empty(), "table needs headers");
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats an accuracy as the paper does ("89.9%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a mean ± CI pair.
pub fn pct_ci(mean: f64, ci: f64) -> String {
    format!("{:.1}%±{:.1}", mean * 100.0, ci * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8991), "89.9%");
        assert_eq!(pct_ci(0.8991, 0.012), "89.9%±1.2");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("hfl_bench_test_csv");
        let dir_s = dir.to_str().unwrap();
        write_csv(dir_s, "t", "x,y", &["1,2".to_string()]);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
