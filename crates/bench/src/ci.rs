//! Repeated-run statistics: the paper reports 5-run averages (Table V)
//! and confidence bands (Figure 3).

/// Mean / standard deviation / 95 % confidence half-width of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Half-width of the normal-approximation 95 % confidence interval.
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// On an empty sample.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)).sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std / (n as f64).sqrt()
        };
        Self { mean, std, ci95, n }
    }

    /// Lower edge of the confidence band.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the confidence band.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

/// Per-index summaries across runs of equal-length series — the
/// shaded-band construction of Figure 3.
///
/// # Panics
/// If series lengths differ or the input is empty.
pub fn summarize_series(runs: &[Vec<f64>]) -> Vec<Summary> {
    assert!(!runs.is_empty(), "no runs to summarize");
    let len = runs[0].len();
    assert!(
        runs.iter().all(|r| r.len() == len),
        "series length mismatch"
    );
    (0..len)
        .map(|i| {
            let col: Vec<f64> = runs.iter().map(|r| r[i]).collect();
            Summary::of(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = Summary::of(&[0.9]);
        assert_eq!(s.mean, 0.9);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 / 3f64.sqrt()).abs() < 1e-9);
        assert!(s.lo() < s.mean && s.mean < s.hi());
    }

    #[test]
    fn series_bands() {
        let runs = vec![vec![0.1, 0.5, 0.9], vec![0.3, 0.5, 0.7]];
        let bands = summarize_series(&runs);
        assert_eq!(bands.len(), 3);
        assert!((bands[0].mean - 0.2).abs() < 1e-12);
        assert_eq!(bands[1].std, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_series_panics() {
        summarize_series(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
