//! Property-based tests for the tensor kernels: algebraic identities and
//! order-statistic invariants that must hold for arbitrary inputs.

use proptest::prelude::*;

use hfl_tensor::{ops, stats};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, len)
}

proptest! {
    #[test]
    fn axpby_is_convex_combination(
        alpha in 0.0f32..=1.0,
        x in finite_vec(16),
        y0 in finite_vec(16),
    ) {
        let mut y = y0.clone();
        ops::axpby(alpha, &x, 1.0 - alpha, &mut y);
        for i in 0..16 {
            let lo = x[i].min(y0[i]) - 1e-3;
            let hi = x[i].max(y0[i]) + 1e-3;
            prop_assert!(y[i] >= lo && y[i] <= hi,
                "coordinate {i} left the segment: {} not in [{lo}, {hi}]", y[i]);
        }
    }

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz(
        a in finite_vec(32),
        b in finite_vec(32),
    ) {
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-6 * (1.0 + ab.abs()));
        let bound = ops::norm(&a) * ops::norm(&b);
        prop_assert!(ab.abs() <= bound + 1e-3);
    }

    #[test]
    fn triangle_inequality(
        a in finite_vec(16),
        b in finite_vec(16),
        c in finite_vec(16),
    ) {
        let ac = ops::dist(&a, &c);
        let ab = ops::dist(&a, &b);
        let bc = ops::dist(&b, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn clip_norm_never_exceeds_radius(
        mut v in finite_vec(16),
        tau in 0.0f64..100.0,
    ) {
        ops::clip_norm(&mut v, tau);
        prop_assert!(ops::norm(&v) <= tau + 1e-3);
    }

    #[test]
    fn cosine_similarity_bounded(a in finite_vec(8), b in finite_vec(8)) {
        let s = ops::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn mean_within_per_coordinate_hull(rows in prop::collection::vec(finite_vec(8), 1..10)) {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0.0f32; 8];
        ops::mean_of(&refs, &mut out);
        for j in 0..8 {
            let lo = rows.iter().map(|r| r[j]).fold(f32::INFINITY, f32::min);
            let hi = rows.iter().map(|r| r[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[j] >= lo - 1e-2 && out[j] <= hi + 1e-2);
        }
    }

    #[test]
    fn median_is_an_order_statistic_bound(mut xs in prop::collection::vec(-1e3f32..1e3, 1..50)) {
        let lo = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let m = stats::median_in_place(&mut xs);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn median_breakdown_point(
        honest in prop::collection::vec(-10.0f32..10.0, 5..20),
        outlier in 1e6f32..1e9,
    ) {
        // Fewer outliers than honest values: the median stays within the
        // honest range.
        let n_out = (honest.len() - 1) / 2;
        let mut all = honest.clone();
        all.extend(std::iter::repeat_n(outlier, n_out));
        let m = stats::median_in_place(&mut all);
        let lo = honest.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = honest.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(m >= lo && m <= hi, "median {m} escaped [{lo}, {hi}]");
    }

    #[test]
    fn trimmed_mean_kills_trim_outliers(
        honest in prop::collection::vec(-10.0f32..10.0, 5..20),
        outlier in 1e6f32..1e9,
        n_out in 1usize..3,
    ) {
        let mut all = honest.clone();
        all.extend(std::iter::repeat_n(outlier, n_out));
        if 2 * n_out < all.len() {
            let tm = stats::trimmed_mean_in_place(&mut all, n_out);
            let lo = honest.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = honest.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(tm >= lo - 1e-3 && tm <= hi + 1e-3);
        }
    }

    #[test]
    fn matvec_is_linear(
        x in finite_vec(6),
        y in finite_vec(6),
        data in prop::collection::vec(-10.0f32..10.0, 24),
    ) {
        let m = hfl_tensor::Matrix::from_vec(4, 6, data);
        let mut mx = vec![0.0f32; 4];
        let mut my = vec![0.0f32; 4];
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut msum = vec![0.0f32; 4];
        m.matvec(&x, &mut mx);
        m.matvec(&y, &mut my);
        m.matvec(&sum, &mut msum);
        for i in 0..4 {
            let expect = mx[i] + my[i];
            prop_assert!((msum[i] - expect).abs() <= 1e-2 * (1.0 + expect.abs()));
        }
    }
}
