//! Coordinate-wise order statistics over stacks of parameter vectors.
//!
//! These are the mathematical primitives behind the Median and Trimmed-Mean
//! Byzantine-robust aggregation rules: given `n` model updates of dimension
//! `d`, compute a per-coordinate statistic across the `n` values of each of
//! the `d` coordinates.

/// Median of a scratch buffer (sorts in place). For even lengths returns
/// the average of the two central order statistics, matching the usual
/// statistical definition used by coordinate-wise Median aggregation.
///
/// # Panics
/// On an empty buffer.
pub fn median_in_place(buf: &mut [f32]) -> f32 {
    assert!(!buf.is_empty(), "median of empty buffer");
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = buf.len();
    if n % 2 == 1 {
        buf[n / 2]
    } else {
        0.5 * (buf[n / 2 - 1] + buf[n / 2])
    }
}

/// Mean of the values that remain after removing the `trim` smallest and
/// `trim` largest entries (sorts the scratch buffer in place).
///
/// # Panics
/// If `2 * trim >= buf.len()` (nothing would remain) or the buffer is empty.
pub fn trimmed_mean_in_place(buf: &mut [f32], trim: usize) -> f32 {
    assert!(!buf.is_empty(), "trimmed mean of empty buffer");
    assert!(
        2 * trim < buf.len(),
        "trim {} too large for {} values",
        trim,
        buf.len()
    );
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in trimmed-mean input"));
    let kept = &buf[trim..buf.len() - trim];
    kept.iter().map(|x| *x as f64).sum::<f64>() as f32 / kept.len() as f32
}

/// Coordinate-wise median over `rows` (each of length `d`), written into
/// `out`. Allocation-free apart from one scratch column buffer.
pub fn coordinate_median(rows: &[&[f32]], out: &mut [f32]) {
    let mut col = Vec::new();
    coordinate_median_into(rows, out, &mut col);
}

/// [`coordinate_median`] with a caller-owned column buffer — fully
/// allocation-free once `col` reaches the row count.
pub fn coordinate_median_into(rows: &[&[f32]], out: &mut [f32], col: &mut Vec<f32>) {
    let d = out.len();
    assert!(!rows.is_empty(), "coordinate_median: empty input");
    assert!(
        rows.iter().all(|r| r.len() == d),
        "coordinate_median: row length mismatch"
    );
    col.clear();
    col.resize(rows.len(), 0.0);
    for (j, o) in out.iter_mut().enumerate() {
        for (c, r) in col.iter_mut().zip(rows) {
            *c = r[j];
        }
        *o = median_in_place(col);
    }
}

/// Coordinate-wise `trim`-trimmed mean over `rows`, written into `out`.
pub fn coordinate_trimmed_mean(rows: &[&[f32]], trim: usize, out: &mut [f32]) {
    let mut col = Vec::new();
    coordinate_trimmed_mean_into(rows, trim, out, &mut col);
}

/// [`coordinate_trimmed_mean`] with a caller-owned column buffer — fully
/// allocation-free once `col` reaches the row count.
pub fn coordinate_trimmed_mean_into(
    rows: &[&[f32]],
    trim: usize,
    out: &mut [f32],
    col: &mut Vec<f32>,
) {
    let d = out.len();
    assert!(!rows.is_empty(), "coordinate_trimmed_mean: empty input");
    assert!(
        rows.iter().all(|r| r.len() == d),
        "coordinate_trimmed_mean: row length mismatch"
    );
    col.clear();
    col.resize(rows.len(), 0.0);
    for (j, o) in out.iter_mut().enumerate() {
        for (c, r) in col.iter_mut().zip(rows) {
            *c = r[j];
        }
        *o = trimmed_mean_in_place(col, trim);
    }
}

/// Sample mean and (population) variance of a scalar slice.
pub fn mean_var(xs: &[f32]) -> (f64, f64) {
    assert!(!xs.is_empty(), "mean_var of empty slice");
    let n = xs.len() as f64;
    let mean = xs.iter().map(|x| *x as f64).sum::<f64>() / n;
    let var = xs.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// Sample standard deviation (with Bessel's correction); 0 for n < 2.
pub fn sample_std(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(|x| *x as f64).sum::<f64>() / n;
    (xs.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut [5.0]), 5.0);
    }

    #[test]
    fn median_ignores_one_huge_outlier() {
        // Robustness: a single adversarial value cannot move the median
        // outside the honest range.
        let m = median_in_place(&mut [1.0, 2.0, 3.0, 1e9]);
        assert!((1.0..=3.0).contains(&m));
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let tm = trimmed_mean_in_place(&mut [-1e9, 1.0, 2.0, 3.0, 1e9], 1);
        assert!((tm - 2.0).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let tm = trimmed_mean_in_place(&mut [1.0, 2.0, 3.0], 0);
        assert!((tm - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn over_trim_panics() {
        trimmed_mean_in_place(&mut [1.0, 2.0], 1);
    }

    #[test]
    fn coordinate_median_per_column() {
        let r1 = [1.0f32, 10.0];
        let r2 = [2.0f32, 20.0];
        let r3 = [3.0f32, 1e9];
        let mut out = [0.0f32; 2];
        coordinate_median(&[&r1, &r2, &r3], &mut out);
        assert_eq!(out, [2.0, 20.0]);
    }

    #[test]
    fn coordinate_trimmed_mean_per_column() {
        let r1 = [0.0f32, -1e9];
        let r2 = [2.0f32, 5.0];
        let r3 = [4.0f32, 7.0];
        let r4 = [6.0f32, 9.0];
        let r5 = [1e9f32, 1e9];
        let mut out = [0.0f32; 2];
        coordinate_trimmed_mean(&[&r1, &r2, &r3, &r4, &r5], 1, &mut out);
        assert_eq!(out, [4.0, 7.0]);
    }

    #[test]
    fn mean_var_basics() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((v - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sample_std_singleton_is_zero() {
        assert_eq!(sample_std(&[5.0]), 0.0);
    }
}
