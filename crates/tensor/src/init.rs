//! Deterministic parameter initializers.
//!
//! All initializers draw from a caller-supplied RNG so entire experiments
//! are reproducible from a single seed.

use rand::Rng;

/// Fill `buf` with samples from `U(-a, a)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, a: f32, buf: &mut [f32]) {
    assert!(a >= 0.0, "uniform init bound must be non-negative");
    for x in buf.iter_mut() {
        *x = rng.gen_range(-a..=a);
    }
}

/// Xavier/Glorot uniform initialization for a dense layer with the given
/// fan-in and fan-out: `U(-sqrt(6/(fan_in+fan_out)), +...)`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize, buf: &mut [f32]) {
    assert!(fan_in + fan_out > 0, "xavier init needs positive fan");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, a, buf);
}

/// Fill `buf` with i.i.d. `N(mean, std²)` samples (Box–Muller, no external
/// distribution crate needed).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32, buf: &mut [f32]) {
    assert!(std >= 0.0, "gaussian std must be non-negative");
    let mut i = 0;
    while i < buf.len() {
        let (z0, z1) = box_muller(rng);
        buf[i] = mean + std * z0;
        i += 1;
        if i < buf.len() {
            buf[i] = mean + std * z1;
            i += 1;
        }
    }
}

/// One Box–Muller draw: two independent standard normal samples.
#[inline]
pub fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// A single standard normal sample.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    box_muller(rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; 1000];
        uniform(&mut rng, 0.5, &mut buf);
        assert!(buf.iter().all(|x| x.abs() <= 0.5));
        // not all identical
        assert!(buf.iter().any(|x| *x != buf[0]));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut big = vec![0.0f32; 1000];
        xavier_uniform(&mut rng, 10_000, 10_000, &mut big);
        let bound = (6.0f32 / 20_000.0).sqrt();
        assert!(big.iter().all(|x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0f32; 20_000];
        gaussian(&mut rng, 2.0, 3.0, &mut buf);
        let mean: f64 = buf.iter().map(|x| *x as f64).sum::<f64>() / buf.len() as f64;
        let var: f64 =
            buf.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        gaussian(&mut StdRng::seed_from_u64(42), 0.0, 1.0, &mut a);
        gaussian(&mut StdRng::seed_from_u64(42), 0.0, 1.0, &mut b);
        assert_eq!(a, b);
    }
}
