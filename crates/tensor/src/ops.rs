//! Flat-slice kernels: the inner loops of the whole system.
//!
//! All functions operate on `&[f32]` / `&mut [f32]` so they can be applied
//! to model parameter vectors, gradients, and matrix rows alike.

use crate::check_same_len;

/// `y += alpha * x` (the classic BLAS `axpy`). This is the SGD update and
/// the inner loop of weighted model averaging.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `y = alpha * x + beta * y` — the linear local/global model combiner of
/// ABD-HFL Eq. (1) with `alpha = correction factor`, `beta = 1 - alpha`.
#[inline]
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * *xi + beta * *yi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise `y += x`.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += *xi;
    }
}

/// Element-wise `y -= x`.
#[inline]
pub fn sub_assign(x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= *xi;
    }
}

/// Dot product. Accumulates in `f64` for stability over long vectors
/// (parameter vectors routinely have 10⁴–10⁶ coordinates).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    check_same_len(a, b);
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += (*x as f64) * (*y as f64);
    }
    acc
}

/// Squared Euclidean norm (f64 accumulator).
#[inline]
pub fn norm_sq(a: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for x in a {
        let v = *x as f64;
        acc += v * v;
    }
    acc
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f64 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance between two vectors — the kernel of Krum's
/// pairwise score matrix.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    check_same_len(a, b);
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let d = (*x - *y) as f64;
        acc += d * d;
    }
    acc
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is zero
/// (the convention used by cosine-similarity clustering defenses).
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Clip `x` to Euclidean norm at most `tau` (centered-clipping building
/// block). Returns the scaling factor applied (1.0 when no clip happened).
#[inline]
pub fn clip_norm(x: &mut [f32], tau: f64) -> f64 {
    assert!(tau >= 0.0, "clip radius must be non-negative");
    let n = norm(x);
    if n <= tau || n == 0.0 {
        return 1.0;
    }
    let s = (tau / n) as f32;
    scale(s, x);
    s as f64
}

/// Fill with zeros.
#[inline]
pub fn zero(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// `out = mean of rows` where `rows` all share the same length.
/// Panics on an empty input (the mean of nothing is undefined).
pub fn mean_of(rows: &[&[f32]], out: &mut [f32]) {
    assert!(!rows.is_empty(), "mean_of: empty input");
    zero(out);
    for r in rows {
        add_assign(r, out);
    }
    scale(1.0 / rows.len() as f32, out);
}

/// Weighted mean: `out = Σ wᵢ·rowᵢ / Σ wᵢ`. Weights must be non-negative
/// and not all zero.
pub fn weighted_mean_of(rows: &[&[f32]], weights: &[f32], out: &mut [f32]) {
    assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
    assert!(!rows.is_empty(), "weighted_mean_of: empty input");
    let total: f64 = weights.iter().map(|w| *w as f64).sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    zero(out);
    for (r, w) in rows.iter().zip(weights) {
        axpy(*w, r, out);
    }
    scale((1.0 / total) as f32, out);
}

/// True when every coordinate of `a` and `b` differs by at most `tol`.
#[inline]
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_adds_scaled() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_is_linear_combiner() {
        let g = [1.0, 1.0];
        let mut l = [3.0, 5.0];
        // alpha = 0.25: l = 0.25*g + 0.75*l
        axpby(0.25, &g, 0.75, &mut l);
        assert_eq!(l, [2.5, 4.0]);
    }

    #[test]
    fn axpby_alpha_one_replaces() {
        let g = [7.0, 8.0];
        let mut l = [0.0, 0.0];
        axpby(1.0, &g, 0.0, &mut l);
        assert_eq!(l, g);
    }

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(norm_sq(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist(&a, &b), 5.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        // zero vector convention
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn clip_norm_clips_only_long_vectors() {
        let mut v = [3.0, 4.0];
        let s = clip_norm(&mut v, 10.0);
        assert_eq!(s, 1.0);
        assert_eq!(v, [3.0, 4.0]);

        let s = clip_norm(&mut v, 2.5);
        assert!((s - 0.5).abs() < 1e-6);
        assert!(approx_eq(&v, &[1.5, 2.0], 1e-6));
    }

    #[test]
    fn mean_of_rows() {
        let r1 = [1.0f32, 2.0];
        let r2 = [3.0f32, 6.0];
        let mut out = [0.0f32; 2];
        mean_of(&[&r1, &r2], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let r1 = [0.0f32];
        let r2 = [10.0f32];
        let mut out = [0.0f32];
        weighted_mean_of(&[&r1, &r2], &[1.0, 3.0], &mut out);
        assert!((out[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut y = [0.0f32; 2];
        axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn mean_of_empty_panics() {
        let mut out = [0.0f32; 1];
        mean_of(&[], &mut out);
    }
}
