//! Flat-slice kernels: the inner loops of the whole system.
//!
//! All functions operate on `&[f32]` / `&mut [f32]` so they can be applied
//! to model parameter vectors, gradients, and matrix rows alike.

use crate::check_same_len;

/// `y += alpha * x` (the classic BLAS `axpy`). This is the SGD update and
/// the inner loop of weighted model averaging.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `y = alpha * x + beta * y` — the linear local/global model combiner of
/// ABD-HFL Eq. (1) with `alpha = correction factor`, `beta = 1 - alpha`.
#[inline]
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * *xi + beta * *yi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise `y += x`.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += *xi;
    }
}

/// Element-wise `y -= x`.
#[inline]
pub fn sub_assign(x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= *xi;
    }
}

/// Dot product. Accumulates in `f64` for stability over long vectors
/// (parameter vectors routinely have 10⁴–10⁶ coordinates).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    check_same_len(a, b);
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += (*x as f64) * (*y as f64);
    }
    acc
}

/// Squared Euclidean norm (f64 accumulator).
#[inline]
pub fn norm_sq(a: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for x in a {
        let v = *x as f64;
        acc += v * v;
    }
    acc
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f64 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance between two vectors — the kernel of Krum's
/// pairwise score matrix.
///
/// A NaN result (adversarial NaN coordinates, or same-signed infinities
/// cancelling) is canonicalized to the positive quiet NaN: IEEE leaves
/// NaN sign/payload propagation unspecified and compilers exploit that,
/// but Krum sorts distances with `total_cmp`, where a negative NaN would
/// order *before* every finite value and let a poisoned row win.
/// Canonicalizing pins the contract — NaN distances always sort last —
/// and makes the blocked kernel bitwise-reproducible against this one.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    check_same_len(a, b);
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let d = (*x - *y) as f64;
        acc += d * d;
    }
    if acc.is_nan() {
        return f64::NAN;
    }
    acc
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is zero
/// (the convention used by cosine-similarity clustering defenses).
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Clip `x` to Euclidean norm at most `tau` (centered-clipping building
/// block). Returns the scaling factor applied (1.0 when no clip happened).
#[inline]
pub fn clip_norm(x: &mut [f32], tau: f64) -> f64 {
    assert!(tau >= 0.0, "clip radius must be non-negative");
    let n = norm(x);
    if n <= tau || n == 0.0 {
        return 1.0;
    }
    let s = (tau / n) as f32;
    scale(s, x);
    s as f64
}

/// Fill with zeros.
#[inline]
pub fn zero(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Rows processed per coordinate pass by the blocked kernels below.
///
/// Four f64 accumulators fit comfortably in registers; larger blocks
/// spill without improving the memory-traffic picture (the shared
/// operand `a` is the reuse win, and it is already read once per pass).
const BLOCK_ROWS: usize = 4;

/// Blocked squared-distance kernel: `out[k] = dist_sq(a, rows[k])`.
///
/// Rows are processed in register blocks of [`BLOCK_ROWS`], so `a` is
/// streamed once per block instead of once per row — the cache-blocking
/// half of the Krum distance-matrix optimization. Byte-stability: every
/// pair keeps its *own* `f64` accumulator and visits coordinates in
/// index order, so each `out[k]` is bitwise-equal to `dist_sq(a,
/// rows[k])` (the naive reference retained in [`reference`]).
pub fn dist_sq_block(a: &[f32], rows: &[&[f32]], out: &mut [f64]) {
    assert_eq!(rows.len(), out.len(), "rows/out length mismatch");
    let d = a.len();
    let mut k = 0;
    while k + BLOCK_ROWS <= rows.len() {
        let (r0, r1, r2, r3) = (rows[k], rows[k + 1], rows[k + 2], rows[k + 3]);
        check_same_len(a, r0);
        check_same_len(a, r1);
        check_same_len(a, r2);
        check_same_len(a, r3);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for c in 0..d {
            let x = a[c];
            let d0 = (x - r0[c]) as f64;
            a0 += d0 * d0;
            let d1 = (x - r1[c]) as f64;
            a1 += d1 * d1;
            let d2 = (x - r2[c]) as f64;
            a2 += d2 * d2;
            let d3 = (x - r3[c]) as f64;
            a3 += d3 * d3;
        }
        // NaN canonicalization, matching `dist_sq` (see its docs).
        out[k] = if a0.is_nan() { f64::NAN } else { a0 };
        out[k + 1] = if a1.is_nan() { f64::NAN } else { a1 };
        out[k + 2] = if a2.is_nan() { f64::NAN } else { a2 };
        out[k + 3] = if a3.is_nan() { f64::NAN } else { a3 };
        k += BLOCK_ROWS;
    }
    while k < rows.len() {
        out[k] = dist_sq(a, rows[k]);
        k += 1;
    }
}

/// Fused multi-row accumulate: `out += r₀ + r₁ + …` in row order.
///
/// Equivalent to calling [`add_assign`] once per row, but rows are
/// fused in blocks of [`BLOCK_ROWS`] so `out` is read and written once
/// per block instead of once per row. Byte-stability: for every
/// coordinate the partial sums are added in exactly the row order the
/// sequential `add_assign` chain would produce (`((out+r₀)+r₁)+…`,
/// left-associated), so the result is bitwise identical.
pub fn add_rows(rows: &[&[f32]], out: &mut [f32]) {
    let mut k = 0;
    while k + BLOCK_ROWS <= rows.len() {
        let (r0, r1, r2, r3) = (rows[k], rows[k + 1], rows[k + 2], rows[k + 3]);
        check_same_len(r0, out);
        check_same_len(r1, out);
        check_same_len(r2, out);
        check_same_len(r3, out);
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = *o;
            acc += r0[c];
            acc += r1[c];
            acc += r2[c];
            acc += r3[c];
            *o = acc;
        }
        k += BLOCK_ROWS;
    }
    while k < rows.len() {
        add_assign(rows[k], out);
        k += 1;
    }
}

/// Fused multi-row axpy: `out += w₀·r₀ + w₁·r₁ + …` in row order, with
/// the same left-associated per-coordinate add chain a sequence of
/// [`axpy`] calls would produce — bitwise identical, one pass over
/// `out` per block of [`BLOCK_ROWS`] rows.
pub fn axpy_rows(weights: &[f32], rows: &[&[f32]], out: &mut [f32]) {
    assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
    let mut k = 0;
    while k + BLOCK_ROWS <= rows.len() {
        let (r0, r1, r2, r3) = (rows[k], rows[k + 1], rows[k + 2], rows[k + 3]);
        let (w0, w1, w2, w3) = (
            weights[k],
            weights[k + 1],
            weights[k + 2],
            weights[k + 3],
        );
        check_same_len(r0, out);
        check_same_len(r1, out);
        check_same_len(r2, out);
        check_same_len(r3, out);
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = *o;
            acc += w0 * r0[c];
            acc += w1 * r1[c];
            acc += w2 * r2[c];
            acc += w3 * r3[c];
            *o = acc;
        }
        k += BLOCK_ROWS;
    }
    while k < rows.len() {
        axpy(weights[k], rows[k], out);
        k += 1;
    }
}

/// `out = mean of rows` where `rows` all share the same length.
/// Panics on an empty input (the mean of nothing is undefined).
///
/// Uses the fused [`add_rows`] kernel; bitwise identical to the naive
/// per-row loop retained in [`reference::mean_of_naive`].
pub fn mean_of(rows: &[&[f32]], out: &mut [f32]) {
    assert!(!rows.is_empty(), "mean_of: empty input");
    zero(out);
    add_rows(rows, out);
    scale(1.0 / rows.len() as f32, out);
}

/// Weighted mean: `out = Σ wᵢ·rowᵢ / Σ wᵢ`. Weights must be non-negative
/// and not all zero.
///
/// Uses the fused [`axpy_rows`] kernel; bitwise identical to the naive
/// per-row loop retained in [`reference::weighted_mean_of_naive`].
pub fn weighted_mean_of(rows: &[&[f32]], weights: &[f32], out: &mut [f32]) {
    assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
    assert!(!rows.is_empty(), "weighted_mean_of: empty input");
    let total: f64 = weights.iter().map(|w| *w as f64).sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    zero(out);
    axpy_rows(weights, rows, out);
    scale((1.0 / total) as f32, out);
}

/// `out = mean of rows[idx[0]], rows[idx[1]], …` — a selection mean
/// (Multi-Krum) without materializing a selected-refs vector. Bitwise
/// identical to [`mean_of`] over the gathered rows: same block
/// structure, same left-associated per-coordinate add order.
pub fn mean_of_indexed(rows: &[&[f32]], idx: &[usize], out: &mut [f32]) {
    assert!(!idx.is_empty(), "mean_of: empty input");
    zero(out);
    let mut k = 0;
    while k + BLOCK_ROWS <= idx.len() {
        let (r0, r1, r2, r3) = (
            rows[idx[k]],
            rows[idx[k + 1]],
            rows[idx[k + 2]],
            rows[idx[k + 3]],
        );
        check_same_len(r0, out);
        check_same_len(r1, out);
        check_same_len(r2, out);
        check_same_len(r3, out);
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = *o;
            acc += r0[c];
            acc += r1[c];
            acc += r2[c];
            acc += r3[c];
            *o = acc;
        }
        k += BLOCK_ROWS;
    }
    while k < idx.len() {
        add_assign(rows[idx[k]], out);
        k += 1;
    }
    scale(1.0 / idx.len() as f32, out);
}

/// Naive reference kernels, retained verbatim so differential tests
/// (`tests/kernel_equivalence.rs`) and `perf_baseline --naive` can pin
/// the fused/blocked kernels above bitwise against the original loops.
/// Not part of the supported API.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Original `mean_of` body: one `add_assign` pass per row.
    pub fn mean_of_naive(rows: &[&[f32]], out: &mut [f32]) {
        assert!(!rows.is_empty(), "mean_of: empty input");
        zero(out);
        for r in rows {
            add_assign(r, out);
        }
        scale(1.0 / rows.len() as f32, out);
    }

    /// Original `weighted_mean_of` body: one `axpy` pass per row.
    pub fn weighted_mean_of_naive(rows: &[&[f32]], weights: &[f32], out: &mut [f32]) {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        assert!(!rows.is_empty(), "weighted_mean_of: empty input");
        let total: f64 = weights.iter().map(|w| *w as f64).sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative with positive sum"
        );
        zero(out);
        for (r, w) in rows.iter().zip(weights) {
            axpy(*w, r, out);
        }
        scale((1.0 / total) as f32, out);
    }

    /// Unblocked distance row: one full `dist_sq` pass per row.
    pub fn dist_sq_rows_naive(a: &[f32], rows: &[&[f32]], out: &mut [f64]) {
        assert_eq!(rows.len(), out.len(), "rows/out length mismatch");
        for (o, r) in out.iter_mut().zip(rows) {
            *o = dist_sq(a, r);
        }
    }
}

/// True when every coordinate of `a` and `b` differs by at most `tol`.
#[inline]
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_adds_scaled() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_is_linear_combiner() {
        let g = [1.0, 1.0];
        let mut l = [3.0, 5.0];
        // alpha = 0.25: l = 0.25*g + 0.75*l
        axpby(0.25, &g, 0.75, &mut l);
        assert_eq!(l, [2.5, 4.0]);
    }

    #[test]
    fn axpby_alpha_one_replaces() {
        let g = [7.0, 8.0];
        let mut l = [0.0, 0.0];
        axpby(1.0, &g, 0.0, &mut l);
        assert_eq!(l, g);
    }

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(norm_sq(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist(&a, &b), 5.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        // zero vector convention
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn clip_norm_clips_only_long_vectors() {
        let mut v = [3.0, 4.0];
        let s = clip_norm(&mut v, 10.0);
        assert_eq!(s, 1.0);
        assert_eq!(v, [3.0, 4.0]);

        let s = clip_norm(&mut v, 2.5);
        assert!((s - 0.5).abs() < 1e-6);
        assert!(approx_eq(&v, &[1.5, 2.0], 1e-6));
    }

    #[test]
    fn mean_of_rows() {
        let r1 = [1.0f32, 2.0];
        let r2 = [3.0f32, 6.0];
        let mut out = [0.0f32; 2];
        mean_of(&[&r1, &r2], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let r1 = [0.0f32];
        let r2 = [10.0f32];
        let mut out = [0.0f32];
        weighted_mean_of(&[&r1, &r2], &[1.0, 3.0], &mut out);
        assert!((out[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut y = [0.0f32; 2];
        axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn mean_of_empty_panics() {
        let mut out = [0.0f32; 1];
        mean_of(&[], &mut out);
    }

    /// Deterministic pseudo-random rows, including adversarial values.
    fn synth_rows(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let mut x = ((i as u64) << 32) | j as u64;
                        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        x ^= x >> 31;
                        match x % 97 {
                            0 => f32::NAN,
                            1 => f32::INFINITY,
                            2 => f32::NEG_INFINITY,
                            3 => f32::MIN_POSITIVE / 2.0, // denormal
                            _ => ((x % 2_000) as f32 / 300.0) - 3.0,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn dist_sq_block_bitwise_matches_naive() {
        for (n, d) in [(1usize, 5usize), (4, 7), (7, 33), (13, 129)] {
            let rows = synth_rows(n + 1, d);
            let a = rows[0].as_slice();
            let refs: Vec<&[f32]> = rows[1..].iter().map(|r| r.as_slice()).collect();
            let mut blocked = vec![0.0f64; n];
            let mut naive = vec![0.0f64; n];
            dist_sq_block(a, &refs, &mut blocked);
            reference::dist_sq_rows_naive(a, &refs, &mut naive);
            for (b, v) in blocked.iter().zip(&naive) {
                assert_eq!(b.to_bits(), v.to_bits(), "n={n} d={d}");
            }
        }
    }

    /// Bitwise equality, except that any two NaNs compare equal: IEEE
    /// leaves NaN sign/payload propagation unspecified, so two formally
    /// identical add chains may yield differently-signed quiet NaNs.
    /// (The f64 distance kernels canonicalize and stay strictly bitwise.)
    fn bits_eq_f32(a: f32, b: f32) -> bool {
        a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
    }

    #[test]
    fn fused_means_bitwise_match_naive() {
        for (n, d) in [(1usize, 3usize), (4, 16), (5, 17), (11, 64)] {
            let rows = synth_rows(n, d);
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let mut fused = vec![0.0f32; d];
            let mut naive = vec![0.0f32; d];
            mean_of(&refs, &mut fused);
            reference::mean_of_naive(&refs, &mut naive);
            for (a, b) in fused.iter().zip(&naive) {
                assert!(bits_eq_f32(*a, *b), "mean n={n} d={d}: {a:?} vs {b:?}");
            }

            let weights: Vec<f32> = (0..n).map(|i| 0.25 + (i % 5) as f32).collect();
            weighted_mean_of(&refs, &weights, &mut fused);
            reference::weighted_mean_of_naive(&refs, &weights, &mut naive);
            for (a, b) in fused.iter().zip(&naive) {
                assert!(bits_eq_f32(*a, *b), "wmean n={n} d={d}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn dist_sq_is_bitwise_symmetric() {
        // The symmetry-halved Krum matrix relies on dist_sq(a, b) being
        // bitwise-equal to dist_sq(b, a): (x−y) = −(y−x) exactly in IEEE
        // arithmetic, so the squared terms — and their sum — agree.
        let rows = synth_rows(6, 41);
        for a in &rows {
            for b in &rows {
                assert_eq!(dist_sq(a, b).to_bits(), dist_sq(b, a).to_bits());
            }
        }
    }
}
