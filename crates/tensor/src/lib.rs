//! # hfl-tensor
//!
//! Dense linear-algebra kernels used throughout the ABD-HFL reproduction.
//!
//! Everything in the federated-learning stack reduces to operations on flat
//! `f32` parameter vectors and small row-major matrices: SGD steps are
//! `axpy`, robust aggregation rules need pairwise squared distances and
//! coordinate-wise order statistics, and the models need `matvec` /
//! rank-1 gradient accumulation. These kernels are written to be
//! autovectorization-friendly (straight-line loops over contiguous slices,
//! no bounds checks in the hot path thanks to equal-length assertions
//! hoisted out of the loops).
//!
//! The crate deliberately has no opinion about parallelism — callers that
//! want to parallelize (e.g. Krum's O(n²) distance matrix) split the work
//! with [`hfl-parallel`] and call these kernels per chunk.

pub mod init;
pub mod matrix;
pub mod ops;
pub mod stats;

pub use matrix::Matrix;

/// Asserts two slices have equal length, with a helpful message.
///
/// Used by every binary kernel; keeping the check in one place makes the
/// hot loops themselves check-free after the compiler sees equal lengths.
#[inline]
#[track_caller]
pub fn check_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(
        a.len(),
        b.len(),
        "tensor kernel length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
}
