//! Row-major dense matrix, sized for the small models and per-cluster
//! update stacks used in the reproduction.

use serde::{Deserialize, Serialize};

use crate::ops;

/// A row-major dense `f32` matrix.
///
/// Rows are contiguous, which makes `matvec` a sequence of dot products
/// over cache-resident rows, and lets callers hand out disjoint row chunks
/// to worker threads with `chunks_mut`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/buffer mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// `out = self * x` (matrix–vector product).
    ///
    /// # Panics
    /// If `x.len() != cols` or `out.len() != rows`.
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length != cols");
        assert_eq!(out.len(), self.rows, "matvec: out length != rows");
        for (o, row) in out.iter_mut().zip(self.rows_iter()) {
            *o = ops::dot(row, x) as f32;
        }
    }

    /// `out = selfᵀ * x` (transposed matrix–vector product) — the backward
    /// pass of a dense layer.
    ///
    /// # Panics
    /// If `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_t(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length != rows");
        assert_eq!(out.len(), self.cols, "matvec_t: out length != cols");
        ops::zero(out);
        for (xi, row) in x.iter().zip(self.rows_iter()) {
            ops::axpy(*xi, row, out);
        }
    }

    /// Rank-1 update `self += alpha * a ⊗ b` (outer product accumulate) —
    /// the gradient accumulation of a dense layer (`a` = output-side error,
    /// `b` = input activation).
    pub fn add_outer(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), self.rows, "add_outer: a length != rows");
        assert_eq!(b.len(), self.cols, "add_outer: b length != cols");
        let cols = self.cols;
        for (i, ai) in a.iter().enumerate() {
            let coeff = alpha * *ai;
            if coeff == 0.0 {
                continue;
            }
            let row = &mut self.data[i * cols..(i + 1) * cols];
            ops::axpy(coeff, b, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn shape_and_rows() {
        let m = m2x3();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = m2x3();
        let x = [1.0, 0.0, -1.0];
        let mut out = [0.0; 2];
        m.matvec(&x, &mut out);
        assert_eq!(out, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let m = m2x3();
        let x = [1.0, 1.0];
        let mut out = [0.0; 3];
        m.matvec_t(&x, &mut out);
        assert_eq!(out, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(1.0, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
        m.add_outer(-1.0, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn transpose_consistency_dot_identity() {
        // <Ax, y> == <x, Aᵀy> for random-ish values.
        let m = m2x3();
        let x = [0.5, -1.5, 2.0];
        let y = [1.0, -2.0];
        let mut ax = [0.0; 2];
        m.matvec(&x, &mut ax);
        let mut aty = [0.0; 3];
        m.matvec_t(&y, &mut aty);
        let lhs = ops::dot(&ax, &y);
        let rhs = ops::dot(&x, &aty);
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape/buffer mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
