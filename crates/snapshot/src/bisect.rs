//! Divergence bisection: given two runs that should agree, find the
//! first round where they stop agreeing.
//!
//! Works over [`RunManifest`]s (per-round records, fault log, suspicion
//! log) with a binary search on the prefix predicate "the first `k`
//! rounds already differ" — which is monotone under determinism: once
//! two runs diverge, the derived RNG streams keep them diverged. The
//! same [`bisect_first`] primitive drives the snapshot-probing mode of
//! the `bisect_divergence` tool.

use hfl_telemetry::RunManifest;

/// The first point where two runs disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based engine round of the first disagreement. When the
    /// per-round logs agree entirely (component `totals`, `metrics`,
    /// `final_accuracy` or `header`), this is the round count.
    pub round: usize,
    /// Which part of the round log disagrees first:
    /// `round_record` / `faults` / `suspicion` / `missing_round` for
    /// in-round divergence, else `totals` / `final_accuracy` /
    /// `metrics` / `header`.
    pub component: &'static str,
    /// Rendering of the disagreeing piece in run A.
    pub a: String,
    /// Rendering of the disagreeing piece in run B.
    pub b: String,
}

/// First index in `0..len` where `diverged` holds, assuming the
/// predicate is monotone (false…false true…true); `None` when it never
/// holds. Probes O(log len) indices — callers can log each probe from
/// inside the closure.
pub fn bisect_first(len: usize, mut diverged: impl FnMut(usize) -> bool) -> Option<usize> {
    if len == 0 || !diverged(len - 1) {
        return None;
    }
    let (mut lo, mut hi) = (0usize, len - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if diverged(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Binary-searches two manifests for their first divergent round.
///
/// Returns `None` when the manifests describe byte-identical runs.
/// `on_probe(round, diverged)` is called for every bisection probe, so
/// tools can narrate the search.
pub fn first_divergence(
    a: &RunManifest,
    b: &RunManifest,
    mut on_probe: impl FnMut(usize, bool),
) -> Option<Divergence> {
    let rounds = a.rounds.len().max(b.rounds.len());
    let first = bisect_first(rounds, |r| {
        let differs = round_view(a, r) != round_view(b, r);
        on_probe(r, differs);
        differs
    });
    if let Some(round) = first {
        let (va, vb) = (round_view(a, round), round_view(b, round));
        for (component, ra, rb) in [
            ("round_record", &va.record, &vb.record),
            ("faults", &va.faults, &vb.faults),
            ("suspicion", &va.suspicion, &vb.suspicion),
        ] {
            if ra != rb {
                return Some(Divergence {
                    round,
                    component,
                    a: ra.clone(),
                    b: rb.clone(),
                });
            }
        }
        // Unreachable by construction, but keep the tool honest.
        return Some(Divergence {
            round,
            component: "missing_round",
            a: format!("{va:?}"),
            b: format!("{vb:?}"),
        });
    }
    let round = rounds;
    let tail: [(&'static str, String, String); 4] = [
        (
            "totals",
            format!("{:?}", a.totals),
            format!("{:?}", b.totals),
        ),
        (
            "final_accuracy",
            format!("{:?}", a.final_accuracy.to_bits()),
            format!("{:?}", b.final_accuracy.to_bits()),
        ),
        (
            "metrics",
            format!("{:?}", a.metrics),
            format!("{:?}", b.metrics),
        ),
        (
            "header",
            format!(
                "schema={} label={} seed={} config_hash={}",
                a.schema, a.label, a.seed, a.config_hash
            ),
            format!(
                "schema={} label={} seed={} config_hash={}",
                b.schema, b.label, b.seed, b.config_hash
            ),
        ),
    ];
    for (component, ra, rb) in tail {
        if ra != rb {
            return Some(Divergence {
                round,
                component,
                a: ra,
                b: rb,
            });
        }
    }
    None
}

/// Everything one manifest says about engine round `r` (its 1-based
/// record plus fault/suspicion entries), rendered for comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RoundView {
    record: String,
    faults: String,
    suspicion: String,
}

fn round_view(m: &RunManifest, r: usize) -> RoundView {
    RoundView {
        record: m
            .rounds
            .iter()
            .find(|rec| rec.round == r + 1)
            .map_or_else(|| "<missing>".into(), |rec| format!("{rec:?}")),
        faults: m
            .faults
            .iter()
            .filter(|f| f.round == r)
            .map(|f| format!("{f:?}\n"))
            .collect(),
        suspicion: m
            .suspicion
            .as_ref()
            .map(|s| {
                s.events
                    .iter()
                    .filter(|e| e.round == r)
                    .map(|e| format!("{e:?}\n"))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_telemetry::{RoundRecord, RunManifest};

    fn manifest(rounds: usize, skew_from: Option<usize>) -> RunManifest {
        let mut m = RunManifest::new("test", 7, "cfg".to_string());
        for r in 0..rounds {
            let skew = skew_from.is_some_and(|s| r >= s) as u64;
            m.rounds.push(RoundRecord {
                round: r + 1,
                accuracy: None,
                messages: 100 + skew,
                bytes: 1_000,
                excluded: 0,
                absent: 0,
            });
            m.totals.messages += 100 + skew;
            m.totals.bytes += 1_000;
        }
        m
    }

    #[test]
    fn identical_manifests_have_no_divergence() {
        let a = manifest(8, None);
        let b = manifest(8, None);
        assert_eq!(first_divergence(&a, &b, |_, _| {}), None);
    }

    #[test]
    fn finds_the_first_divergent_round_with_log_probes() {
        let a = manifest(16, None);
        let b = manifest(16, Some(5));
        let mut probes = Vec::new();
        let d = first_divergence(&a, &b, |r, diff| probes.push((r, diff))).unwrap();
        assert_eq!(d.round, 5);
        assert_eq!(d.component, "round_record");
        assert!(probes.len() <= 6, "probed {} rounds of 16", probes.len());
    }

    #[test]
    fn totals_only_divergence_is_reported_past_the_last_round() {
        let a = manifest(4, None);
        let mut b = manifest(4, None);
        b.totals.messages += 17;
        let d = first_divergence(&a, &b, |_, _| {}).unwrap();
        assert_eq!((d.round, d.component), (4, "totals"));
    }

    #[test]
    fn length_mismatch_diverges_at_the_missing_round() {
        let a = manifest(6, None);
        let b = manifest(4, None);
        let d = first_divergence(&a, &b, |_, _| {}).unwrap();
        assert_eq!(d.round, 4);
        assert_eq!(d.component, "round_record");
        assert_eq!(d.b, "<missing>");
    }

    #[test]
    fn bisect_first_matches_linear_scan() {
        for len in 0..20usize {
            for flip in 0..=len {
                let got = bisect_first(len, |i| i >= flip);
                let want = (flip < len).then_some(flip);
                assert_eq!(got, want, "len={len} flip={flip}");
            }
        }
    }
}
