//! # hfl-snapshot
//!
//! Versioned checkpoints of the round engine: everything the runner
//! needs to continue a run **byte-identically** from round `k` instead
//! of round 0.
//!
//! Because every RNG stream in the engine is derived statelessly from
//! `(seed, round, …)`, no generator state needs to be captured — a
//! snapshot is exactly the cross-round mutable state: the global model,
//! the cost accounting totals, the manifest prefix (round / fault /
//! suspicion records), each [`LayerState`] (suspicion scores +
//! quarantine set, the adaptive adversary's bisection window, the fault
//! schedule cursor), and the metrics-registry accumulators.
//!
//! Two codecs are provided, both hand-rolled in the same
//! no-serialization-dependency discipline as the telemetry manifest:
//!
//! * [`EngineSnapshot::to_json`] / [`EngineSnapshot::from_json`] — one
//!   compact JSON line, human-greppable, used by the CI gates;
//! * [`EngineSnapshot::to_bytes`] / [`EngineSnapshot::from_bytes`] — a
//!   length-prefixed little-endian binary form for bulk storage.
//!
//! Both round-trip bit-exactly: `f32`/`f64` payloads are carried as raw
//! bit patterns, so NaN payloads and signed zeros survive.
//!
//! ## Versioning rules
//!
//! [`SNAPSHOT_VERSION`] is bumped whenever the meaning or layout of any
//! field changes. Decoders reject other versions outright — a snapshot
//! is a same-build artifact (it also embeds a config hash the resume
//! path validates), never a long-term archival format.

mod binary;
mod bisect;
mod json;

pub use bisect::{bisect_first, first_divergence, Divergence};

use std::fmt;

use hfl_telemetry::{FaultRecord, MetricSample, RoundRecord, SuspicionRecord};

/// Version tag embedded in every snapshot; decoders reject others.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Full engine state at the top of round [`EngineSnapshot::round`]
/// (that many rounds completed, none in flight).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Codec version ([`SNAPSHOT_VERSION`] at capture time).
    pub version: u64,
    /// The run seed (informational; the resume config re-supplies it).
    pub seed: u64,
    /// Hash of the full config the snapshot was captured under.
    pub config_hash: String,
    /// Hash of the config with the horizon fields (`rounds`,
    /// `eval_every`) normalized away: resume accepts a config whose
    /// base hash matches even when only the horizon differs, which is
    /// what lets shrink candidates with halved `rounds` reuse a parent
    /// snapshot.
    pub base_hash: String,
    /// Rounds completed; resume executes `round..cfg.rounds`.
    pub round: usize,
    /// The global model parameters (bit-exact).
    pub model: Vec<f32>,
    /// Cumulative cost accounting totals.
    pub cost: CostSnapshot,
    /// Accuracy series so far: `(round, accuracy)` per evaluation.
    pub accuracy: Vec<(usize, f64)>,
    /// Manifest prefix: one record per completed round.
    pub rounds: Vec<RoundRecord>,
    /// Manifest prefix: fault activations so far.
    pub faults: Vec<FaultRecord>,
    /// Manifest prefix: suspicion/quarantine events so far.
    pub susp_log: Vec<SuspicionRecord>,
    /// Per-layer cross-round state, in engine stack order
    /// (faults → defense → adversary, present layers only).
    pub layers: Vec<LayerState>,
    /// Metrics-registry accumulators at capture time.
    pub metrics: Vec<MetricSample>,
}

/// The seven cumulative [`CostCounters`] totals.
///
/// [`CostCounters`]: https://docs.rs/abd-hfl-core
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Model-bearing messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Proposals excluded by robust aggregation / consensus.
    pub excluded: u64,
    /// Client-round absences under churn.
    pub absent: u64,
    /// Uploads lost to injected faults.
    pub faulted: u64,
    /// Client-rounds spent quarantined.
    pub quarantined: u64,
    /// Updates withheld by the coalition.
    pub withheld: u64,
}

/// One engine layer's cross-round state.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerState {
    /// The fault layer re-derives everything from the schedule each
    /// round; the snapshot carries only a cursor (activations strictly
    /// before the snapshot round) that resume validates against the
    /// plan it was given.
    Fault {
        /// Scheduled fault activations strictly before the round.
        activated: u64,
    },
    /// The defense layer: suspicion tracker contents when enabled.
    Defense {
        /// `None` when the config runs the layer without a tracker.
        tracker: Option<TrackerState>,
    },
    /// The adversary layer: adaptive search window plus the coalition's
    /// knowledge of which of its leaders have been convicted.
    Adversary {
        /// `None` for static (non-adaptive) attacks.
        search: Option<SearchState>,
        /// Per-client conviction flags (indexed like the population).
        detected: Vec<bool>,
    },
}

impl LayerState {
    /// The engine layer this state belongs to.
    pub fn layer_name(&self) -> &'static str {
        match self {
            LayerState::Fault { .. } => "faults",
            LayerState::Defense { .. } => "defense",
            LayerState::Adversary { .. } => "adversary",
        }
    }
}

/// Suspicion-tracker contents: strike scores and the quarantine set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrackerState {
    /// Per-client strike scores.
    pub scores: Vec<f64>,
    /// Per-client quarantine flags.
    pub quarantined: Vec<bool>,
    /// Total quarantine entries so far.
    pub quarantine_events: u64,
}

/// The adaptive adversary's magnitude-bisection window.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchState {
    /// Lower bound of the search window.
    pub lo: f32,
    /// Upper bound of the search window.
    pub hi: f32,
    /// Magnitude currently being probed.
    pub current: f32,
    /// `(round, magnitude, accepted)` probe history.
    pub history: Vec<(usize, f32, bool)>,
}

/// A codec or validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    /// What went wrong, with enough context to locate the field.
    pub detail: String,
}

impl SnapshotError {
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error: {}", self.detail)
    }
}

impl std::error::Error for SnapshotError {}

impl EngineSnapshot {
    /// Serializes as one compact JSON line (deterministic key order).
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// Parses a snapshot from [`Self::to_json`] output, rejecting other
    /// [`SNAPSHOT_VERSION`]s.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        json::from_json(text)
    }

    /// Serializes as a length-prefixed little-endian binary blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        binary::to_bytes(self)
    }

    /// Parses a snapshot from [`Self::to_bytes`] output, rejecting
    /// other [`SNAPSHOT_VERSION`]s and truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        binary::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_telemetry::{HistogramStats, MetricValue};
    use proptest::prelude::*;

    pub(crate) fn sample_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            seed: 42,
            config_hash: "deadbeef01234567".into(),
            base_hash: "cafef00dcafef00d".into(),
            round: 3,
            model: vec![0.5, -1.25, f32::NAN, 0.0, -0.0],
            cost: CostSnapshot {
                messages: 100,
                bytes: 25_600,
                excluded: 2,
                absent: 1,
                faulted: 3,
                quarantined: 4,
                withheld: 5,
            },
            accuracy: vec![(2, 0.75)],
            rounds: vec![
                RoundRecord {
                    round: 1,
                    accuracy: None,
                    messages: 50,
                    bytes: 12_800,
                    excluded: 1,
                    absent: 0,
                },
                RoundRecord {
                    round: 2,
                    accuracy: Some(0.75),
                    messages: 50,
                    bytes: 12_800,
                    excluded: 1,
                    absent: 1,
                },
            ],
            faults: vec![FaultRecord {
                round: 1,
                kind: "crash_stop".into(),
                detail: "node 2".into(),
            }],
            susp_log: vec![SuspicionRecord {
                round: 2,
                kind: "quarantined".into(),
                client: 7,
                score: 3.5,
            }],
            layers: vec![
                LayerState::Fault { activated: 1 },
                LayerState::Defense {
                    tracker: Some(TrackerState {
                        scores: vec![0.0, 3.5, -0.0],
                        quarantined: vec![false, true, false],
                        quarantine_events: 1,
                    }),
                },
                LayerState::Adversary {
                    search: Some(SearchState {
                        lo: 0.0,
                        hi: 4.0,
                        current: 2.0,
                        history: vec![(0, 1.3, true), (1, 2.0, false)],
                    }),
                    detected: vec![false, false, true],
                },
            ],
            metrics: vec![
                MetricSample {
                    name: "hfl_accuracy".into(),
                    labels: vec![],
                    value: MetricValue::Gauge(0.75),
                },
                MetricSample {
                    name: "hfl_messages_total".into(),
                    labels: vec![("mechanism".into(), "vote".into())],
                    value: MetricValue::Counter(100),
                },
                MetricSample {
                    name: "span_ms".into(),
                    labels: vec![],
                    value: MetricValue::Histogram(HistogramStats {
                        count: 4,
                        sum: 10.0,
                        min: 1.0,
                        max: 4.0,
                        p50: 2.0,
                        p90: 4.0,
                        p99: 4.0,
                    }),
                },
            ],
        }
    }

    #[test]
    fn sample_round_trips_both_codecs() {
        let snap = sample_snapshot();
        let back = EngineSnapshot::from_json(&snap.to_json()).unwrap();
        assert_snap_eq(&snap, &back);
        let back = EngineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_snap_eq(&snap, &back);
    }

    #[test]
    fn json_is_stable_across_encodes() {
        let snap = sample_snapshot();
        assert_eq!(snap.to_json(), snap.to_json());
        assert_eq!(snap.to_bytes(), snap.to_bytes());
    }

    #[test]
    fn wrong_version_is_rejected_by_both_codecs() {
        let mut snap = sample_snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        let err = EngineSnapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.detail.contains("version"), "{err}");
        let err = EngineSnapshot::from_bytes(&snap.to_bytes()).unwrap_err();
        assert!(err.detail.contains("version"), "{err}");
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let bytes = sample_snapshot().to_bytes();
        for cut in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                EngineSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(EngineSnapshot::from_json("{").is_err());
        assert!(EngineSnapshot::from_json("{\"version\":1}").is_err());
        assert!(EngineSnapshot::from_json("[]").is_err());
    }

    /// Bit-exact equality: `PartialEq` on floats treats NaN ≠ NaN, so
    /// compare through the codec-identity lens instead.
    pub(crate) fn assert_snap_eq(a: &EngineSnapshot, b: &EngineSnapshot) {
        assert_eq!(a.to_bytes(), b.to_bytes(), "snapshots differ bit-wise");
    }

    /// A string of `1..=len` chars drawn from `chars` (a plain charset
    /// combinator keeps the strategies free of regex syntax).
    fn arb_str(chars: &'static str, len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
        let pool: Vec<char> = chars.chars().collect();
        proptest::collection::vec(0..pool.len(), len)
            .prop_map(move |ix| ix.into_iter().map(|i| pool[i]).collect())
    }

    const NAME_CHARS: &str = "abcdefghijklmnopqrstuvwxyz_";
    const HEX_CHARS: &str = "0123456789abcdef";
    const DETAIL_CHARS: &str = "aZ0 _-\"\\/\n\t:{},[]\u{3c0}";

    fn arb_f64() -> impl Strategy<Value = f64> {
        prop_oneof![
            any::<f64>().prop_filter("finite", |f| f.is_finite()),
            Just(0.0),
            Just(-0.0),
            Just(f64::NAN),
            Just(f64::INFINITY),
        ]
    }

    fn arb_f32() -> impl Strategy<Value = f32> {
        any::<u32>().prop_map(f32::from_bits)
    }

    fn arb_layer() -> impl Strategy<Value = LayerState> {
        prop_oneof![
            any::<u64>().prop_map(|activated| LayerState::Fault { activated }),
            proptest::option::of((
                proptest::collection::vec(arb_f64(), 0..8),
                proptest::collection::vec(any::<bool>(), 0..8),
                any::<u64>(),
            ))
            .prop_map(|t| LayerState::Defense {
                tracker: t.map(|(scores, quarantined, quarantine_events)| TrackerState {
                    scores,
                    quarantined,
                    quarantine_events,
                }),
            }),
            (
                proptest::option::of((
                    arb_f32(),
                    arb_f32(),
                    arb_f32(),
                    proptest::collection::vec((any::<usize>(), arb_f32(), any::<bool>()), 0..6),
                )),
                proptest::collection::vec(any::<bool>(), 0..8),
            )
                .prop_map(|(s, detected)| LayerState::Adversary {
                    search: s.map(|(lo, hi, current, history)| SearchState {
                        lo,
                        hi,
                        current,
                        history,
                    }),
                    detected,
                }),
        ]
    }

    fn arb_metric() -> impl Strategy<Value = MetricSample> {
        (
            arb_str(NAME_CHARS, 1..13),
            proptest::collection::vec((arb_str(NAME_CHARS, 1..7), arb_str(HEX_CHARS, 0..7)), 0..3),
            prop_oneof![
                any::<u64>().prop_map(MetricValue::Counter),
                arb_f64().prop_map(MetricValue::Gauge),
                (any::<u64>(), arb_f64(), arb_f64(), arb_f64()).prop_map(|(c, a, b, d)| {
                    MetricValue::Histogram(HistogramStats {
                        count: c,
                        sum: a,
                        min: b,
                        max: d,
                        p50: a,
                        p90: b,
                        p99: d,
                    })
                }),
            ],
        )
            .prop_map(|(name, labels, value)| MetricSample {
                name,
                labels,
                value,
            })
    }

    fn arb_snapshot() -> impl Strategy<Value = EngineSnapshot> {
        (
            (
                any::<u64>(),
                arb_str(HEX_CHARS, 0..17),
                arb_str(HEX_CHARS, 0..17),
                0usize..64,
                proptest::collection::vec(arb_f32(), 0..32),
                proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
            ),
            (
                proptest::collection::vec((0usize..64, arb_f64()), 0..4),
                proptest::collection::vec(
                    (0usize..64, proptest::option::of(arb_f64()), any::<u64>()),
                    0..4,
                ),
                proptest::collection::vec(
                    (
                        0usize..64,
                        arb_str(NAME_CHARS, 1..9),
                        arb_str(DETAIL_CHARS, 0..13),
                    ),
                    0..3,
                ),
                proptest::collection::vec(
                    (
                        0usize..64,
                        arb_str(NAME_CHARS, 1..9),
                        any::<usize>(),
                        arb_f64(),
                    ),
                    0..3,
                ),
                proptest::collection::vec(arb_layer(), 0..4),
                proptest::collection::vec(arb_metric(), 0..4),
            ),
        )
            .prop_map(
                |(
                    (seed, config_hash, base_hash, round, model, costs),
                    (accuracy, rounds, faults, susp, layers, metrics),
                )| {
                    EngineSnapshot {
                        version: SNAPSHOT_VERSION,
                        seed,
                        config_hash,
                        base_hash,
                        round,
                        model,
                        cost: CostSnapshot {
                            messages: costs.first().map_or(0, |c| c.0),
                            bytes: costs.first().map_or(0, |c| c.1),
                            excluded: costs.get(1).map_or(0, |c| c.0),
                            absent: costs.get(1).map_or(0, |c| c.1),
                            faulted: costs.get(2).map_or(0, |c| c.0),
                            quarantined: costs.get(2).map_or(0, |c| c.1),
                            withheld: costs.get(3).map_or(0, |c| c.0),
                        },
                        accuracy,
                        rounds: rounds
                            .into_iter()
                            .map(|(round, accuracy, n)| RoundRecord {
                                round,
                                accuracy,
                                messages: n,
                                bytes: n.wrapping_mul(256),
                                excluded: n % 7,
                                absent: n % 3,
                            })
                            .collect(),
                        faults: faults
                            .into_iter()
                            .map(|(round, kind, detail)| FaultRecord {
                                round,
                                kind,
                                detail,
                            })
                            .collect(),
                        susp_log: susp
                            .into_iter()
                            .map(|(round, kind, client, score)| SuspicionRecord {
                                round,
                                kind,
                                client,
                                score,
                            })
                            .collect(),
                        layers,
                        metrics,
                    }
                },
            )
    }

    proptest! {
        #[test]
        fn arbitrary_snapshots_round_trip_json(snap in arb_snapshot()) {
            let back = EngineSnapshot::from_json(&snap.to_json())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(snap.to_bytes(), back.to_bytes());
        }

        #[test]
        fn arbitrary_snapshots_round_trip_binary(snap in arb_snapshot()) {
            let back = EngineSnapshot::from_bytes(&snap.to_bytes())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(snap.to_bytes(), back.to_bytes());
        }
    }
}
