//! The JSON codec: one compact deterministic line per snapshot.
//!
//! Floats are carried as raw bit patterns (`u64`/`u32` integers, the
//! model as a hex string) rather than decimal text: a snapshot must
//! survive encode → decode with bit-exact model parameters, including
//! NaN payloads and signed zeros, because the resume path replays SGD
//! from these exact values.

use hfl_telemetry::{
    FaultRecord, HistogramStats, Json, MetricSample, MetricValue, RoundRecord, SuspicionRecord,
};

use crate::{
    CostSnapshot, EngineSnapshot, LayerState, SearchState, SnapshotError, TrackerState,
    SNAPSHOT_VERSION,
};

pub(crate) fn to_json(snap: &EngineSnapshot) -> String {
    let cost = &snap.cost;
    Json::Obj(vec![
        ("schema".into(), Json::UInt(snap.version)),
        ("seed".into(), Json::UInt(snap.seed)),
        ("config_hash".into(), Json::Str(snap.config_hash.clone())),
        ("base_hash".into(), Json::Str(snap.base_hash.clone())),
        ("round".into(), Json::UInt(snap.round as u64)),
        ("model".into(), Json::Str(model_hex(&snap.model))),
        (
            "cost".into(),
            Json::Obj(vec![
                ("messages".into(), Json::UInt(cost.messages)),
                ("bytes".into(), Json::UInt(cost.bytes)),
                ("excluded".into(), Json::UInt(cost.excluded)),
                ("absent".into(), Json::UInt(cost.absent)),
                ("faulted".into(), Json::UInt(cost.faulted)),
                ("quarantined".into(), Json::UInt(cost.quarantined)),
                ("withheld".into(), Json::UInt(cost.withheld)),
            ]),
        ),
        (
            "accuracy".into(),
            Json::Arr(
                snap.accuracy
                    .iter()
                    .map(|&(round, acc)| Json::Arr(vec![Json::UInt(round as u64), f64_json(acc)]))
                    .collect(),
            ),
        ),
        (
            "rounds".into(),
            Json::Arr(snap.rounds.iter().map(round_json).collect()),
        ),
        (
            "faults".into(),
            Json::Arr(snap.faults.iter().map(fault_json).collect()),
        ),
        (
            "suspicion".into(),
            Json::Arr(snap.susp_log.iter().map(susp_json).collect()),
        ),
        (
            "layers".into(),
            Json::Arr(snap.layers.iter().map(layer_json).collect()),
        ),
        (
            "metrics".into(),
            Json::Arr(snap.metrics.iter().map(metric_json).collect()),
        ),
    ])
    .to_string()
}

pub(crate) fn from_json(text: &str) -> Result<EngineSnapshot, SnapshotError> {
    let root = Json::parse(text).map_err(|e| SnapshotError::new(format!("bad JSON: {e}")))?;
    let version = get_u64(&root, "schema")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(format!(
            "unsupported snapshot version {version} (want {SNAPSHOT_VERSION})"
        )));
    }
    let cost = get(&root, "cost")?;
    Ok(EngineSnapshot {
        version,
        seed: get_u64(&root, "seed")?,
        config_hash: get_str(&root, "config_hash")?.to_string(),
        base_hash: get_str(&root, "base_hash")?.to_string(),
        round: get_usize(&root, "round")?,
        model: model_from_hex(get_str(&root, "model")?)?,
        cost: CostSnapshot {
            messages: get_u64(cost, "messages")?,
            bytes: get_u64(cost, "bytes")?,
            excluded: get_u64(cost, "excluded")?,
            absent: get_u64(cost, "absent")?,
            faulted: get_u64(cost, "faulted")?,
            quarantined: get_u64(cost, "quarantined")?,
            withheld: get_u64(cost, "withheld")?,
        },
        accuracy: get_arr(&root, "accuracy")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .ok_or_else(|| SnapshotError::new("accuracy entry is not a pair"))?;
                match pair {
                    [round, acc] => Ok((
                        usize_of(round, "accuracy round")?,
                        f64_of(acc, "accuracy value")?,
                    )),
                    _ => Err(SnapshotError::new("accuracy entry is not a pair")),
                }
            })
            .collect::<Result<_, _>>()?,
        rounds: get_arr(&root, "rounds")?
            .iter()
            .map(round_from_json)
            .collect::<Result<_, _>>()?,
        faults: get_arr(&root, "faults")?
            .iter()
            .map(fault_from_json)
            .collect::<Result<_, _>>()?,
        susp_log: get_arr(&root, "suspicion")?
            .iter()
            .map(susp_from_json)
            .collect::<Result<_, _>>()?,
        layers: get_arr(&root, "layers")?
            .iter()
            .map(layer_from_json)
            .collect::<Result<_, _>>()?,
        metrics: get_arr(&root, "metrics")?
            .iter()
            .map(metric_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// 8 lowercase hex chars per parameter, big-endian bit pattern.
fn model_hex(model: &[f32]) -> String {
    let mut out = String::with_capacity(model.len() * 8);
    for &v in model {
        out.push_str(&format!("{:08x}", v.to_bits()));
    }
    out
}

fn model_from_hex(hex: &str) -> Result<Vec<f32>, SnapshotError> {
    if !hex.len().is_multiple_of(8) {
        return Err(SnapshotError::new(format!(
            "model hex length {} is not a multiple of 8",
            hex.len()
        )));
    }
    hex.as_bytes()
        .chunks(8)
        .map(|chunk| {
            let s = std::str::from_utf8(chunk)
                .map_err(|_| SnapshotError::new("model hex is not ASCII"))?;
            u32::from_str_radix(s, 16)
                .map(f32::from_bits)
                .map_err(|_| SnapshotError::new(format!("bad model hex chunk `{s}`")))
        })
        .collect()
}

fn f64_json(v: f64) -> Json {
    Json::UInt(v.to_bits())
}

fn f32_json(v: f32) -> Json {
    Json::UInt(v.to_bits() as u64)
}

fn round_json(r: &RoundRecord) -> Json {
    Json::Obj(vec![
        ("round".into(), Json::UInt(r.round as u64)),
        ("accuracy".into(), r.accuracy.map_or(Json::Null, f64_json)),
        ("messages".into(), Json::UInt(r.messages)),
        ("bytes".into(), Json::UInt(r.bytes)),
        ("excluded".into(), Json::UInt(r.excluded)),
        ("absent".into(), Json::UInt(r.absent)),
    ])
}

fn round_from_json(v: &Json) -> Result<RoundRecord, SnapshotError> {
    let accuracy = match get(v, "accuracy")? {
        Json::Null => None,
        other => Some(f64_of(other, "round accuracy")?),
    };
    Ok(RoundRecord {
        round: get_usize(v, "round")?,
        accuracy,
        messages: get_u64(v, "messages")?,
        bytes: get_u64(v, "bytes")?,
        excluded: get_u64(v, "excluded")?,
        absent: get_u64(v, "absent")?,
    })
}

fn fault_json(r: &FaultRecord) -> Json {
    Json::Obj(vec![
        ("round".into(), Json::UInt(r.round as u64)),
        ("kind".into(), Json::Str(r.kind.clone())),
        ("detail".into(), Json::Str(r.detail.clone())),
    ])
}

fn fault_from_json(v: &Json) -> Result<FaultRecord, SnapshotError> {
    Ok(FaultRecord {
        round: get_usize(v, "round")?,
        kind: get_str(v, "kind")?.to_string(),
        detail: get_str(v, "detail")?.to_string(),
    })
}

fn susp_json(r: &SuspicionRecord) -> Json {
    Json::Obj(vec![
        ("round".into(), Json::UInt(r.round as u64)),
        ("kind".into(), Json::Str(r.kind.clone())),
        ("client".into(), Json::UInt(r.client as u64)),
        ("score".into(), f64_json(r.score)),
    ])
}

fn susp_from_json(v: &Json) -> Result<SuspicionRecord, SnapshotError> {
    Ok(SuspicionRecord {
        round: get_usize(v, "round")?,
        kind: get_str(v, "kind")?.to_string(),
        client: get_usize(v, "client")?,
        score: f64_of(get(v, "score")?, "suspicion score")?,
    })
}

fn bools_json(flags: &[bool]) -> Json {
    Json::Arr(flags.iter().map(|&b| Json::Bool(b)).collect())
}

fn bools_from_json(v: &Json, what: &str) -> Result<Vec<bool>, SnapshotError> {
    v.as_arr()
        .ok_or_else(|| SnapshotError::new(format!("{what} is not an array")))?
        .iter()
        .map(|b| {
            b.as_bool()
                .ok_or_else(|| SnapshotError::new(format!("{what} entry is not a bool")))
        })
        .collect()
}

fn layer_json(layer: &LayerState) -> Json {
    let mut pairs = vec![("layer".into(), Json::Str(layer.layer_name().into()))];
    match layer {
        LayerState::Fault { activated } => {
            pairs.push(("activated".into(), Json::UInt(*activated)));
        }
        LayerState::Defense { tracker } => {
            let value = tracker.as_ref().map_or(Json::Null, |t| {
                Json::Obj(vec![
                    (
                        "scores".into(),
                        Json::Arr(t.scores.iter().map(|&s| f64_json(s)).collect()),
                    ),
                    ("quarantined".into(), bools_json(&t.quarantined)),
                    ("quarantine_events".into(), Json::UInt(t.quarantine_events)),
                ])
            });
            pairs.push(("tracker".into(), value));
        }
        LayerState::Adversary { search, detected } => {
            let value = search.as_ref().map_or(Json::Null, |s| {
                Json::Obj(vec![
                    ("lo".into(), f32_json(s.lo)),
                    ("hi".into(), f32_json(s.hi)),
                    ("current".into(), f32_json(s.current)),
                    (
                        "history".into(),
                        Json::Arr(
                            s.history
                                .iter()
                                .map(|&(round, mag, accepted)| {
                                    Json::Arr(vec![
                                        Json::UInt(round as u64),
                                        f32_json(mag),
                                        Json::Bool(accepted),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            });
            pairs.push(("search".into(), value));
            pairs.push(("detected".into(), bools_json(detected)));
        }
    }
    Json::Obj(pairs)
}

fn layer_from_json(v: &Json) -> Result<LayerState, SnapshotError> {
    match get_str(v, "layer")? {
        "faults" => Ok(LayerState::Fault {
            activated: get_u64(v, "activated")?,
        }),
        "defense" => {
            let tracker = match get(v, "tracker")? {
                Json::Null => None,
                t => Some(TrackerState {
                    scores: get_arr(t, "scores")?
                        .iter()
                        .map(|s| f64_of(s, "tracker score"))
                        .collect::<Result<_, _>>()?,
                    quarantined: bools_from_json(get(t, "quarantined")?, "tracker quarantined")?,
                    quarantine_events: get_u64(t, "quarantine_events")?,
                }),
            };
            Ok(LayerState::Defense { tracker })
        }
        "adversary" => {
            let search = match get(v, "search")? {
                Json::Null => None,
                s => Some(SearchState {
                    lo: f32_of(get(s, "lo")?, "search lo")?,
                    hi: f32_of(get(s, "hi")?, "search hi")?,
                    current: f32_of(get(s, "current")?, "search current")?,
                    history: get_arr(s, "history")?
                        .iter()
                        .map(|e| {
                            let e = e.as_arr().ok_or_else(|| {
                                SnapshotError::new("history entry is not a triple")
                            })?;
                            match e {
                                [round, mag, accepted] => Ok((
                                    usize_of(round, "history round")?,
                                    f32_of(mag, "history magnitude")?,
                                    accepted.as_bool().ok_or_else(|| {
                                        SnapshotError::new("history accepted is not a bool")
                                    })?,
                                )),
                                _ => Err(SnapshotError::new("history entry is not a triple")),
                            }
                        })
                        .collect::<Result<_, _>>()?,
                }),
            };
            Ok(LayerState::Adversary {
                search,
                detected: bools_from_json(get(v, "detected")?, "adversary detected")?,
            })
        }
        other => Err(SnapshotError::new(format!("unknown layer `{other}`"))),
    }
}

fn metric_json(m: &MetricSample) -> Json {
    let mut pairs = vec![
        ("name".into(), Json::Str(m.name.clone())),
        (
            "labels".into(),
            Json::Arr(
                m.labels
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                    .collect(),
            ),
        ),
    ];
    match &m.value {
        MetricValue::Counter(v) => {
            pairs.push(("kind".into(), Json::Str("counter".into())));
            pairs.push(("value".into(), Json::UInt(*v)));
        }
        MetricValue::Gauge(v) => {
            pairs.push(("kind".into(), Json::Str("gauge".into())));
            pairs.push(("value".into(), f64_json(*v)));
        }
        MetricValue::Histogram(h) => {
            pairs.push(("kind".into(), Json::Str("histogram".into())));
            pairs.push(("count".into(), Json::UInt(h.count)));
            pairs.push(("sum".into(), f64_json(h.sum)));
            pairs.push(("min".into(), f64_json(h.min)));
            pairs.push(("max".into(), f64_json(h.max)));
            pairs.push(("p50".into(), f64_json(h.p50)));
            pairs.push(("p90".into(), f64_json(h.p90)));
            pairs.push(("p99".into(), f64_json(h.p99)));
        }
    }
    Json::Obj(pairs)
}

fn metric_from_json(v: &Json) -> Result<MetricSample, SnapshotError> {
    let value = match get_str(v, "kind")? {
        "counter" => MetricValue::Counter(get_u64(v, "value")?),
        "gauge" => MetricValue::Gauge(f64_of(get(v, "value")?, "gauge value")?),
        "histogram" => MetricValue::Histogram(HistogramStats {
            count: get_u64(v, "count")?,
            sum: f64_of(get(v, "sum")?, "histogram sum")?,
            min: f64_of(get(v, "min")?, "histogram min")?,
            max: f64_of(get(v, "max")?, "histogram max")?,
            p50: f64_of(get(v, "p50")?, "histogram p50")?,
            p90: f64_of(get(v, "p90")?, "histogram p90")?,
            p99: f64_of(get(v, "p99")?, "histogram p99")?,
        }),
        other => return Err(SnapshotError::new(format!("unknown metric kind `{other}`"))),
    };
    Ok(MetricSample {
        name: get_str(v, "name")?.to_string(),
        labels: get_arr(v, "labels")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .ok_or_else(|| SnapshotError::new("label is not a pair"))?;
                match pair {
                    [k, v] => {
                        let k = k
                            .as_str()
                            .ok_or_else(|| SnapshotError::new("label key is not a string"))?;
                        let v = v
                            .as_str()
                            .ok_or_else(|| SnapshotError::new("label value is not a string"))?;
                        Ok((k.to_string(), v.to_string()))
                    }
                    _ => Err(SnapshotError::new("label is not a pair")),
                }
            })
            .collect::<Result<_, _>>()?,
        value,
    })
}

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    v.get(key)
        .ok_or_else(|| SnapshotError::new(format!("missing key `{key}`")))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, SnapshotError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| SnapshotError::new(format!("`{key}` is not a u64")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, SnapshotError> {
    Ok(get_u64(v, key)? as usize)
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| SnapshotError::new(format!("`{key}` is not a string")))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| SnapshotError::new(format!("`{key}` is not an array")))
}

fn usize_of(v: &Json, what: &str) -> Result<usize, SnapshotError> {
    v.as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| SnapshotError::new(format!("{what} is not a u64")))
}

fn f64_of(v: &Json, what: &str) -> Result<f64, SnapshotError> {
    v.as_u64()
        .map(f64::from_bits)
        .ok_or_else(|| SnapshotError::new(format!("{what} is not an f64 bit pattern")))
}

fn f32_of(v: &Json, what: &str) -> Result<f32, SnapshotError> {
    let bits = v
        .as_u64()
        .ok_or_else(|| SnapshotError::new(format!("{what} is not an f32 bit pattern")))?;
    u32::try_from(bits)
        .map(f32::from_bits)
        .map_err(|_| SnapshotError::new(format!("{what} exceeds 32 bits")))
}
