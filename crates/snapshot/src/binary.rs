//! The binary codec: a length-prefixed little-endian layout behind a
//! 4-byte magic, for bulk snapshot storage.
//!
//! The layout mirrors the JSON field order exactly; every vector is
//! prefixed by a `u64` element count, every string by a `u64` byte
//! length, and floats are raw IEEE-754 bit patterns (bit-exact
//! round-trip, NaN payloads included). Truncated or trailing input is
//! an error, as is any version other than [`SNAPSHOT_VERSION`].

use hfl_telemetry::{
    FaultRecord, HistogramStats, MetricSample, MetricValue, RoundRecord, SuspicionRecord,
};

use crate::{
    CostSnapshot, EngineSnapshot, LayerState, SearchState, SnapshotError, TrackerState,
    SNAPSHOT_VERSION,
};

const MAGIC: &[u8; 4] = b"HFSN";

const TAG_FAULT: u8 = 0;
const TAG_DEFENSE: u8 = 1;
const TAG_ADVERSARY: u8 = 2;

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

pub(crate) fn to_bytes(snap: &EngineSnapshot) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(256 + snap.model.len() * 4));
    w.0.extend_from_slice(MAGIC);
    w.u64(snap.version);
    w.u64(snap.seed);
    w.str(&snap.config_hash);
    w.str(&snap.base_hash);
    w.u64(snap.round as u64);
    w.u64(snap.model.len() as u64);
    for &v in &snap.model {
        w.f32(v);
    }
    let c = &snap.cost;
    for v in [
        c.messages,
        c.bytes,
        c.excluded,
        c.absent,
        c.faulted,
        c.quarantined,
        c.withheld,
    ] {
        w.u64(v);
    }
    w.u64(snap.accuracy.len() as u64);
    for &(round, acc) in &snap.accuracy {
        w.u64(round as u64);
        w.f64(acc);
    }
    w.u64(snap.rounds.len() as u64);
    for r in &snap.rounds {
        w.u64(r.round as u64);
        w.opt_f64(r.accuracy);
        for v in [r.messages, r.bytes, r.excluded, r.absent] {
            w.u64(v);
        }
    }
    w.u64(snap.faults.len() as u64);
    for f in &snap.faults {
        w.u64(f.round as u64);
        w.str(&f.kind);
        w.str(&f.detail);
    }
    w.u64(snap.susp_log.len() as u64);
    for s in &snap.susp_log {
        w.u64(s.round as u64);
        w.str(&s.kind);
        w.u64(s.client as u64);
        w.f64(s.score);
    }
    w.u64(snap.layers.len() as u64);
    for layer in &snap.layers {
        match layer {
            LayerState::Fault { activated } => {
                w.u8(TAG_FAULT);
                w.u64(*activated);
            }
            LayerState::Defense { tracker } => {
                w.u8(TAG_DEFENSE);
                match tracker {
                    None => w.u8(0),
                    Some(t) => {
                        w.u8(1);
                        w.u64(t.scores.len() as u64);
                        for &s in &t.scores {
                            w.f64(s);
                        }
                        w.bools(&t.quarantined);
                        w.u64(t.quarantine_events);
                    }
                }
            }
            LayerState::Adversary { search, detected } => {
                w.u8(TAG_ADVERSARY);
                match search {
                    None => w.u8(0),
                    Some(s) => {
                        w.u8(1);
                        w.f32(s.lo);
                        w.f32(s.hi);
                        w.f32(s.current);
                        w.u64(s.history.len() as u64);
                        for &(round, mag, accepted) in &s.history {
                            w.u64(round as u64);
                            w.f32(mag);
                            w.u8(accepted as u8);
                        }
                    }
                }
                w.bools(detected);
            }
        }
    }
    w.u64(snap.metrics.len() as u64);
    for m in &snap.metrics {
        w.str(&m.name);
        w.u64(m.labels.len() as u64);
        for (k, v) in &m.labels {
            w.str(k);
            w.str(v);
        }
        match &m.value {
            MetricValue::Counter(v) => {
                w.u8(TAG_COUNTER);
                w.u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.u8(TAG_GAUGE);
                w.f64(*v);
            }
            MetricValue::Histogram(h) => {
                w.u8(TAG_HISTOGRAM);
                w.u64(h.count);
                for v in [h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
                    w.f64(v);
                }
            }
        }
    }
    w.0
}

pub(crate) fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(SnapshotError::new("bad magic (not a snapshot blob)"));
    }
    let version = r.u64()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(format!(
            "unsupported snapshot version {version} (want {SNAPSHOT_VERSION})"
        )));
    }
    let seed = r.u64()?;
    let config_hash = r.str()?;
    let base_hash = r.str()?;
    let round = r.u64()? as usize;
    let model = r.vec(|r| r.f32())?;
    let mut cost = [0u64; 7];
    for slot in &mut cost {
        *slot = r.u64()?;
    }
    let accuracy = r.vec(|r| Ok((r.u64()? as usize, r.f64()?)))?;
    let rounds = r.vec(|r| {
        Ok(RoundRecord {
            round: r.u64()? as usize,
            accuracy: r.opt_f64()?,
            messages: r.u64()?,
            bytes: r.u64()?,
            excluded: r.u64()?,
            absent: r.u64()?,
        })
    })?;
    let faults = r.vec(|r| {
        Ok(FaultRecord {
            round: r.u64()? as usize,
            kind: r.str()?,
            detail: r.str()?,
        })
    })?;
    let susp_log = r.vec(|r| {
        Ok(SuspicionRecord {
            round: r.u64()? as usize,
            kind: r.str()?,
            client: r.u64()? as usize,
            score: r.f64()?,
        })
    })?;
    let layers = r.vec(|r| match r.u8()? {
        TAG_FAULT => Ok(LayerState::Fault {
            activated: r.u64()?,
        }),
        TAG_DEFENSE => {
            let tracker = match r.u8()? {
                0 => None,
                1 => Some(TrackerState {
                    scores: r.vec(|r| r.f64())?,
                    quarantined: r.bools()?,
                    quarantine_events: r.u64()?,
                }),
                other => return Err(SnapshotError::new(format!("bad tracker flag {other}"))),
            };
            Ok(LayerState::Defense { tracker })
        }
        TAG_ADVERSARY => {
            let search = match r.u8()? {
                0 => None,
                1 => Some(SearchState {
                    lo: r.f32()?,
                    hi: r.f32()?,
                    current: r.f32()?,
                    history: r.vec(|r| Ok((r.u64()? as usize, r.f32()?, r.bool()?)))?,
                }),
                other => return Err(SnapshotError::new(format!("bad search flag {other}"))),
            };
            Ok(LayerState::Adversary {
                search,
                detected: r.bools()?,
            })
        }
        other => Err(SnapshotError::new(format!("unknown layer tag {other}"))),
    })?;
    let metrics = r.vec(|r| {
        let name = r.str()?;
        let labels = r.vec(|r| Ok((r.str()?, r.str()?)))?;
        let value = match r.u8()? {
            TAG_COUNTER => MetricValue::Counter(r.u64()?),
            TAG_GAUGE => MetricValue::Gauge(r.f64()?),
            TAG_HISTOGRAM => MetricValue::Histogram(HistogramStats {
                count: r.u64()?,
                sum: r.f64()?,
                min: r.f64()?,
                max: r.f64()?,
                p50: r.f64()?,
                p90: r.f64()?,
                p99: r.f64()?,
            }),
            other => return Err(SnapshotError::new(format!("unknown metric tag {other}"))),
        };
        Ok(MetricSample {
            name,
            labels,
            value,
        })
    })?;
    if r.pos != r.bytes.len() {
        return Err(SnapshotError::new(format!(
            "{} trailing bytes after snapshot",
            r.bytes.len() - r.pos
        )));
    }
    Ok(EngineSnapshot {
        version,
        seed,
        config_hash,
        base_hash,
        round,
        model,
        cost: CostSnapshot {
            messages: cost[0],
            bytes: cost[1],
            excluded: cost[2],
            absent: cost[3],
            faulted: cost[4],
            quarantined: cost[5],
            withheld: cost[6],
        },
        accuracy,
        rounds,
        faults,
        susp_log,
        layers,
        metrics,
    })
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }

    fn bools(&mut self, flags: &[bool]) {
        self.u64(flags.len() as u64);
        self.0.extend(flags.iter().map(|&b| b as u8));
    }
}

struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::new(format!(
                "truncated snapshot (need {n} bytes at offset {})",
                self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::new(format!("bad bool byte {other}"))),
        }
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().unwrap(),
        )))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(SnapshotError::new(format!("bad option flag {other}"))),
        }
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::new("string is not valid UTF-8"))
    }

    fn bools(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.bool()).collect()
    }

    /// A `u64` length prefix, sanity-capped by the remaining input so a
    /// corrupt length cannot trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, SnapshotError> {
        let len = self.u64()?;
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(SnapshotError::new(format!(
                "length prefix {len} exceeds remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(len as usize)
    }

    fn vec<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Vec<T>, SnapshotError> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(item(self)?);
        }
        Ok(out)
    }
}
