//! Property-based tests for the consensus mechanisms: safety contracts
//! under arbitrary honest inputs and adversarial proposals.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_consensus::{
    ApproxAgreement, Consensus, DistanceEvaluator, PbftConsensus, VoteConsensus,
};

/// `n` honest proposals near the origin plus `n_bad < n/2` poisoned ones
/// far away; voters' references are all honest.
fn scenario() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<usize>)> {
    (3usize..8).prop_flat_map(|n_good| {
        let n_bad = (n_good - 1) / 2;
        let honest = prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 3),
            n_good,
        );
        let bad = prop::collection::vec(
            prop::collection::vec(500.0f32..1000.0, 3),
            n_bad,
        );
        (honest, bad).prop_map(|(h, b)| {
            let n_good = h.len();
            let mut all = h;
            let bad_idx: Vec<usize> = (0..b.len()).map(|i| n_good + i).collect();
            all.extend(b);
            (all, bad_idx)
        })
    })
}

fn honest_refs(proposals: &[Vec<f32>], bad: &[usize]) -> Vec<Vec<f32>> {
    // Voters score by distance to an honest reference (origin-ish).
    proposals
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if bad.contains(&i) {
                vec![0.0f32; p.len()]
            } else {
                p.clone()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vote_excludes_every_poisoned_proposal((proposals, bad) in scenario()) {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let own = honest_refs(&proposals, &bad);
        let eval = DistanceEvaluator::new(&own);
        let byz = vec![false; proposals.len()];
        let mut rng = StdRng::seed_from_u64(1);
        let out = VoteConsensus::paper_default().decide(&refs, &byz, &eval, &mut rng);
        for b in &bad {
            prop_assert!(out.excluded.contains(b),
                "poisoned proposal {b} survived (excluded: {:?})", out.excluded);
        }
        // Decided model stays in the honest region.
        prop_assert!(hfl_tensor::ops::norm(&out.decided) < 10.0);
    }

    #[test]
    fn vote_never_excludes_everything((proposals, bad) in scenario()) {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let own = honest_refs(&proposals, &bad);
        let eval = DistanceEvaluator::new(&own);
        // Even with ALL voters Byzantine the vote must decide something.
        let byz = vec![true; proposals.len()];
        let mut rng = StdRng::seed_from_u64(2);
        let out = VoteConsensus::paper_default().decide(&refs, &byz, &eval, &mut rng);
        prop_assert!(out.excluded.len() < proposals.len());
        prop_assert!(out.decided.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn pbft_decides_within_honest_envelope((proposals, bad) in scenario()) {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let n = proposals.len();
        // PBFT tolerates f < n/3 protocol-Byzantine nodes; mark at most
        // that many of the *poisoned-proposal* nodes as protocol-Byzantine.
        let f_max = PbftConsensus::max_faulty(n);
        let mut byz = vec![false; n];
        for b in bad.iter().take(f_max) {
            byz[*b] = true;
        }
        let own = honest_refs(&proposals, &bad);
        let eval = DistanceEvaluator::new(&own);
        let mut rng = StdRng::seed_from_u64(3);
        let out = PbftConsensus::default().decide(&refs, &byz, &eval, &mut rng);
        prop_assert!(out.rounds >= 1);
        prop_assert!(out.decided.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn approx_agreement_decides_in_hull(
        proposals in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 3), 4..10),
    ) {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let byz = vec![false; proposals.len()];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(4);
        let out = ApproxAgreement::new(1e-3, 0).decide(&refs, &byz, &eval, &mut rng);
        // Decision lies inside the per-coordinate hull of the inputs —
        // trimmed-mean iterations are hull-preserving.
        for j in 0..3 {
            let lo = proposals.iter().map(|p| p[j]).fold(f32::INFINITY, f32::min);
            let hi = proposals.iter().map(|p| p[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.decided[j] >= lo - 1e-2 && out.decided[j] <= hi + 1e-2,
                "coordinate {j}: {} outside [{lo}, {hi}]", out.decided[j]);
        }
    }

    #[test]
    fn approx_agreement_message_count_matches_rounds(
        proposals in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 2), 4..8),
    ) {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let n = proposals.len() as u64;
        let byz = vec![false; proposals.len()];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(5);
        let out = ApproxAgreement::new(1e-2, 0).decide(&refs, &byz, &eval, &mut rng);
        prop_assert_eq!(out.messages, out.rounds as u64 * n * (n - 1));
    }
}
