//! PBFT-style three-phase agreement, simulated at the message-count level.
//!
//! The primary proposes an aggregate of the collected partial models
//! (coordinate-wise median — a robust proposal the replicas can verify);
//! replicas validate the proposal against their own local view and run
//! prepare/commit phases. A Byzantine primary proposes a corrupted value,
//! honest replicas reject it, and a view change rotates the primary —
//! faithfully reproducing PBFT's cost structure (O(n²) per phase, f <
//! n/3) without simulating cryptography.

use rand::rngs::StdRng;

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// PBFT-style consensus on the coordinate-median of proposals.
#[derive(Clone, Copy, Debug)]
pub struct PbftConsensus {
    /// Validation slack: a replica accepts a proposal whose distance to
    /// the coordinate-median of its received set is within `slack` times
    /// the honest proposal spread.
    pub slack: f64,
}

impl Default for PbftConsensus {
    fn default() -> Self {
        Self { slack: 2.0 }
    }
}

impl PbftConsensus {
    /// Maximum Byzantine nodes PBFT tolerates among `n`.
    pub fn max_faulty(n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    /// The honest reference value: coordinate-median of all proposals.
    fn reference(proposals: &[&[f32]], d: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; d];
        hfl_tensor::stats::coordinate_median(proposals, &mut out);
        out
    }
}

impl Consensus for PbftConsensus {
    fn name(&self) -> &'static str {
        "pbft"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        _eval: &dyn ProposalEvaluator,
        _rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        let f = Self::max_faulty(n);
        let quorum = 2 * f + 1;
        let honest_count = byzantine.iter().filter(|b| !**b).count();
        assert!(
            honest_count >= quorum.min(n),
            "PBFT cannot reach quorum: {honest_count} honest of {n} (needs {quorum})"
        );

        let reference = Self::reference(proposals, d);
        // Honest proposal spread, for the acceptance predicate.
        let spread = proposals
            .iter()
            .zip(byzantine)
            .filter(|(_, b)| !**b)
            .map(|(p, _)| hfl_tensor::ops::dist(p, &reference))
            .fold(0.0f64, f64::max)
            .max(1e-9);

        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut rounds = 0usize;
        let mut view = 0usize;
        loop {
            rounds += 1;
            let primary = view % n;
            // Pre-prepare: primary broadcasts its proposal of the agreed
            // value. A Byzantine primary proposes its own (poisoned)
            // vector instead of the median.
            let proposal: Vec<f32> = if byzantine[primary] {
                proposals[primary].to_vec()
            } else {
                reference.clone()
            };
            messages += (n - 1) as u64;
            bytes += (n - 1) as u64 * model_bytes(d);

            // Prepare + commit: all-to-all digests.
            messages += 2 * (n * (n - 1)) as u64;
            bytes += 2 * (n * (n - 1)) as u64 * 8;

            // Honest replicas accept iff the proposal sits within the
            // validation envelope around the robust reference (a proposal
            // indistinguishable from honest is accepted — correct PBFT
            // behaviour: safety comes from the validation predicate).
            let in_envelope =
                hfl_tensor::ops::dist(&proposal, &reference) <= self.slack * spread;
            let accepts = if in_envelope { honest_count } else { 0 };
            if accepts >= quorum.min(honest_count) {
                return ConsensusOutcome {
                    decided: proposal,
                    excluded: Vec::new(),
                    rounds,
                    messages,
                    bytes,
                };
            }
            // View change: all-to-all view-change messages, rotate primary.
            messages += (n * (n - 1)) as u64;
            bytes += (n * (n - 1)) as u64 * 8;
            view += 1;
            assert!(
                view <= n,
                "no honest primary found after {n} view changes (impossible under f < n/3)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    fn proposals_with_one_bad() -> Vec<Vec<f32>> {
        vec![
            vec![1.0f32, 1.0],
            vec![1.1f32, 0.9],
            vec![0.9f32, 1.1],
            vec![99.0f32, -99.0],
        ]
    }

    #[test]
    fn honest_primary_decides_in_one_round() {
        let proposals = proposals_with_one_bad();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let byz = [false, false, false, true];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(1);
        let out = PbftConsensus::default().decide(&refs, &byz, &eval, &mut rng);
        assert_eq!(out.rounds, 1);
        // decided = coordinate median, inside honest hull
        assert!(hfl_tensor::ops::dist(&out.decided, &[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn byzantine_primary_triggers_view_change() {
        let proposals = proposals_with_one_bad();
        // rotate so the Byzantine node is the first primary
        let rotated = vec![
            proposals[3].clone(),
            proposals[0].clone(),
            proposals[1].clone(),
            proposals[2].clone(),
        ];
        let refs: Vec<&[f32]> = rotated.iter().map(|p| p.as_slice()).collect();
        let byz = [true, false, false, false];
        let eval = DistanceEvaluator::new(&rotated);
        let mut rng = StdRng::seed_from_u64(1);
        let out = PbftConsensus::default().decide(&refs, &byz, &eval, &mut rng);
        assert!(out.rounds >= 2, "expected a view change");
        assert!(hfl_tensor::ops::dist(&out.decided, &[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn max_faulty_formula() {
        assert_eq!(PbftConsensus::max_faulty(4), 1);
        assert_eq!(PbftConsensus::max_faulty(7), 2);
        assert_eq!(PbftConsensus::max_faulty(1), 0);
    }

    #[test]
    fn message_cost_is_quadratic() {
        let n = 7usize;
        let proposals: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 * 0.01]).collect();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let byz = vec![false; n];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(1);
        let out = PbftConsensus::default().decide(&refs, &byz, &eval, &mut rng);
        assert_eq!(out.messages, (n - 1 + 2 * n * (n - 1)) as u64);
    }

    #[test]
    #[should_panic(expected = "cannot reach quorum")]
    fn too_many_byzantine_panics() {
        let proposals: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32]).collect();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let byz = [true, true, false, false];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(1);
        PbftConsensus::default().decide(&refs, &byz, &eval, &mut rng);
    }
}
