//! Gossip / D2D intra-cluster averaging — the device-to-device
//! aggregation family of the related work (MH-FL, FL-EOCD, TT-HF):
//! cluster members repeatedly average with their ring neighbours until
//! the cluster converges on the mean, which the leader then carries
//! upward. No Byzantine filtering — included as the D2D communication
//! baseline the paper contrasts against ("the aggregation procedure is
//! too complex to be implemented in reality"; here it is also fragile:
//! one Byzantine member biases the consensus mean arbitrarily).

use rand::rngs::StdRng;

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// Ring-gossip averaging to a target diameter.
#[derive(Clone, Copy, Debug)]
pub struct GossipAverage {
    /// Stop when the max pairwise coordinate spread falls below this.
    pub epsilon: f64,
    /// Hard cap on gossip rounds.
    pub max_rounds: usize,
}

impl Default for GossipAverage {
    fn default() -> Self {
        Self {
            epsilon: 1e-4,
            max_rounds: 128,
        }
    }
}

impl GossipAverage {
    /// Gossip with a custom convergence target.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            epsilon,
            ..Self::default()
        }
    }

    fn diameter(values: &[Vec<f32>]) -> f64 {
        let d = values[0].len();
        let mut max = 0.0f64;
        for j in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for v in values {
                lo = lo.min(v[j] as f64);
                hi = hi.max(v[j] as f64);
            }
            max = max.max(hi - lo);
        }
        max
    }
}

impl Consensus for GossipAverage {
    fn name(&self) -> &'static str {
        "gossip-average"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        _eval: &dyn ProposalEvaluator,
        _rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        let mut values: Vec<Vec<f32>> = proposals.iter().map(|p| p.to_vec()).collect();
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut rounds = 0usize;
        while n > 1 && Self::diameter(&values) > self.epsilon && rounds < self.max_rounds {
            rounds += 1;
            // Synchronous ring gossip: node i averages with node (i+1)%n.
            // Byzantine nodes refuse to update (keep broadcasting their
            // own value) — the simplest persistent-bias behaviour.
            let snapshot = values.clone();
            for i in 0..n {
                if byzantine[i] {
                    continue;
                }
                let next = (i + 1) % n;
                let prev = (i + n - 1) % n;
                for j in 0..d {
                    values[i][j] =
                        (snapshot[prev][j] + snapshot[i][j] + snapshot[next][j]) / 3.0;
                }
            }
            messages += 2 * n as u64; // each node sends to both neighbours
            bytes += 2 * n as u64 * model_bytes(d);
        }
        // Decided value: the mean of final values (all within ε of each
        // other for honest-only runs).
        let refs: Vec<&[f32]> = values.iter().map(|v| v.as_slice()).collect();
        let mut decided = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&refs, &mut decided);
        ConsensusOutcome {
            decided,
            excluded: Vec::new(),
            rounds,
            messages,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    fn run(proposals: &[Vec<f32>], byz: &[bool]) -> ConsensusOutcome {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(proposals);
        let mut rng = StdRng::seed_from_u64(1);
        GossipAverage::default().decide(&refs, byz, &eval, &mut rng)
    }

    #[test]
    fn honest_gossip_converges_to_mean() {
        let proposals = vec![vec![0.0f32], vec![4.0f32], vec![8.0f32], vec![4.0f32]];
        let out = run(&proposals, &[false; 4]);
        assert!((out.decided[0] - 4.0).abs() < 1e-2, "got {}", out.decided[0]);
        assert!(out.rounds > 0);
    }

    #[test]
    fn single_node_converges_immediately() {
        let proposals = vec![vec![3.0f32, 1.0]];
        let out = run(&proposals, &[false]);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.decided, vec![3.0, 1.0]);
    }

    #[test]
    fn byzantine_node_biases_the_average() {
        // Documents why gossip averaging is the *non-robust* baseline:
        // a stubborn Byzantine value drags the consensus.
        let honest = vec![vec![0.0f32], vec![0.0f32], vec![0.0f32], vec![100.0f32]];
        let byz = [false, false, false, true];
        let out = run(&honest, &byz);
        assert!(
            out.decided[0] > 10.0,
            "Byzantine bias unexpectedly filtered: {}",
            out.decided[0]
        );
    }

    #[test]
    fn message_cost_is_linear_per_round() {
        let proposals = vec![vec![0.0f32], vec![10.0f32], vec![5.0f32], vec![2.0f32]];
        let out = run(&proposals, &[false; 4]);
        assert_eq!(out.messages, out.rounds as u64 * 8);
    }
}
