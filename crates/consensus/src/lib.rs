//! # hfl-consensus
//!
//! Consensus-based aggregation (**CBA**) mechanisms — the paper's Table II,
//! "Consensus mechanism" rows. In ABD-HFL a cluster (in particular the
//! top-level cluster `C_{0,0}`) agrees on one aggregated model with no
//! leader trusted for correctness:
//!
//! | Strategy | Mechanism | Module |
//! |---|---|---|
//! | Scalar consensus | validation voting (paper Appendix D.B) | [`vote`] |
//! | Scalar consensus | committee-based consensus | [`committee`] |
//! | Scalar consensus | PBFT-style three-phase agreement | [`pbft`] |
//! | Multidimensional | approximate ε-agreement (trimmed-midpoint) | [`approx_agreement`] |
//!
//! Every mechanism implements [`Consensus`], reporting both the decided
//! model *and* its communication cost (message/byte counts) so the
//! scheme-comparison experiments (paper Table III/IV) can weigh
//! robustness against cost.
//!
//! # Example
//!
//! ```
//! use hfl_consensus::{Consensus, DistanceEvaluator, VoteConsensus};
//! use rand::SeedableRng;
//!
//! // Three honest proposals near the origin, one poisoned.
//! let proposals = vec![
//!     vec![0.0f32, 0.1],
//!     vec![0.1, 0.0],
//!     vec![0.05, 0.05],
//!     vec![50.0, 50.0],
//! ];
//! let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
//! let honest_refs = vec![vec![0.0f32, 0.0]; 4];
//! let eval = DistanceEvaluator::new(&honest_refs);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let out = VoteConsensus::paper_default()
//!     .decide(&refs, &[false; 4], &eval, &mut rng);
//! assert_eq!(out.excluded, vec![3]); // the poisoned proposal is voted out
//! ```

pub mod approx_agreement;
pub mod committee;
pub mod echo;
pub mod eval;
pub mod gossip;
pub mod pbft;
pub mod pos;
pub mod quorum;
pub mod telemetry;
pub mod vote;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

pub use approx_agreement::ApproxAgreement;
pub use committee::CommitteeConsensus;
pub use echo::{hash_update, EchoReport};
pub use eval::{DistanceEvaluator, ProposalEvaluator};
pub use gossip::GossipAverage;
pub use pbft::PbftConsensus;
pub use pos::StakeVote;
pub use quorum::quorum_size;
pub use vote::VoteConsensus;

/// Result of one consensus instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsensusOutcome {
    /// The agreed model parameters.
    pub decided: Vec<f32>,
    /// Proposal indices the mechanism excluded as suspicious (empty for
    /// mechanisms that blend rather than filter).
    pub excluded: Vec<usize>,
    /// Protocol rounds executed.
    pub rounds: usize,
    /// Total point-to-point messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged (model vectors dominate; votes and
    /// digests are counted at 8 bytes each).
    pub bytes: u64,
}

/// A consensus mechanism deciding one model from per-node proposals.
///
/// `proposals[i]` is node `i`'s input (its partial aggregated model);
/// `byzantine[i]` marks nodes that misbehave *inside the protocol*
/// (adversarial votes/values). The evaluator lets honest nodes score
/// proposals against local validation data.
pub trait Consensus: Send + Sync {
    /// Mechanism name for reports.
    fn name(&self) -> &'static str;

    /// Runs the mechanism and returns the agreed model plus cost counters.
    ///
    /// # Panics
    /// If `proposals` is empty or lengths mismatch.
    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        eval: &dyn ProposalEvaluator,
        rng: &mut StdRng,
    ) -> ConsensusOutcome;
}

/// Serializable mechanism selector for experiment configs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConsensusKind {
    /// Validation voting with majority survival — the paper's top-level
    /// mechanism ("fewest positive votes are considered malicious").
    VoteMajority,
    /// Validation voting excluding exactly the `exclude` lowest-voted
    /// proposals (ablation variant).
    Vote {
        /// Number of proposals to exclude.
        exclude: usize,
    },
    /// Committee consensus with a committee of the given size.
    Committee {
        /// Committee size (must be ≤ node count at run time).
        size: usize,
        /// Number of proposals the committee excludes.
        exclude: usize,
    },
    /// PBFT-style agreement on the coordinate-median of proposals.
    Pbft,
    /// Approximate agreement to diameter `epsilon` trimming `trim` values
    /// per side per round.
    Approx {
        /// Target diameter.
        epsilon: f64,
        /// Per-side trim count.
        trim: usize,
    },
    /// Stake-weighted majority voting (PoS-inspired). Stakes must match
    /// the node count at run time.
    StakeVote {
        /// Per-node stakes.
        stakes: Vec<f64>,
    },
    /// Ring-gossip averaging to diameter `epsilon` (D2D baseline, not
    /// Byzantine-robust).
    Gossip {
        /// Convergence diameter.
        epsilon: f64,
    },
}

impl ConsensusKind {
    /// Instantiates the mechanism.
    pub fn build(&self) -> Box<dyn Consensus> {
        match self.clone() {
            ConsensusKind::VoteMajority => Box::new(VoteConsensus::paper_default()),
            ConsensusKind::Vote { exclude } => Box::new(VoteConsensus::new(exclude)),
            ConsensusKind::Committee { size, exclude } => {
                Box::new(CommitteeConsensus::new(size, exclude))
            }
            ConsensusKind::Pbft => Box::new(PbftConsensus::default()),
            ConsensusKind::Approx { epsilon, trim } => {
                Box::new(ApproxAgreement::new(epsilon, trim))
            }
            ConsensusKind::StakeVote { stakes } => Box::new(StakeVote::new(stakes)),
            ConsensusKind::Gossip { epsilon } => Box::new(GossipAverage::new(epsilon)),
        }
    }
}

/// Shared validation helper. Returns `(n, d)`.
pub(crate) fn validate(proposals: &[&[f32]], byzantine: &[bool]) -> (usize, usize) {
    assert!(!proposals.is_empty(), "consensus over zero proposals");
    let d = proposals[0].len();
    assert!(
        proposals.iter().all(|p| p.len() == d),
        "proposal length mismatch"
    );
    assert_eq!(
        byzantine.len(),
        proposals.len(),
        "byzantine mask length mismatch"
    );
    (proposals.len(), d)
}

/// Payload size in bytes of one model vector of dimension `d`.
#[inline]
pub(crate) fn model_bytes(d: usize) -> u64 {
    (d * std::mem::size_of::<f32>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kind_builds_every_mechanism() {
        let kinds = [
            ConsensusKind::VoteMajority,
            ConsensusKind::Vote { exclude: 1 },
            ConsensusKind::Committee {
                size: 3,
                exclude: 1,
            },
            ConsensusKind::Pbft,
            ConsensusKind::Approx {
                epsilon: 1e-3,
                trim: 1,
            },
            ConsensusKind::StakeVote {
                stakes: vec![1.0; 4],
            },
            ConsensusKind::Gossip { epsilon: 1e-3 },
        ];
        let proposals: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 0.1, 1.0]).collect();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let byz = vec![false; 4];
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(1);
        for k in kinds {
            let mech = k.build();
            let out = mech.decide(&refs, &byz, &eval, &mut rng);
            assert_eq!(out.decided.len(), 2, "{}", mech.name());
            assert!(out.messages > 0, "{} reported no messages", mech.name());
        }
    }
}
