//! Cross-cluster echo/audit: the defense against equivocating leaders.
//!
//! A cluster leader that aggregates its members' models holds a
//! privileged position: nothing in plain BRA forces the value it sends
//! *upward* to equal the value it echoes *back to its cluster*. An
//! equivocating leader exploits that to poison the parent level while
//! looking honest to its children.
//!
//! The audit closes the gap with digests: every cluster member hashes
//! the partial the leader echoed to it, and the parent-level collector
//! hashes the partial the leader sent up. The parent cross-checks the
//! two — any mismatch between the up-sent digest and the members'
//! majority echo digest is cryptographic-free but unforgeable-in-
//! simulation evidence of equivocation (an equivocating leader cannot
//! make two different vectors hash alike without controlling the hash).
//! Digests are 8 bytes, so the audit costs one tiny message per member
//! per round — negligible next to model transfers.
//!
//! Detection latency is one round: the audit compares values at round
//! end, and repair (using the members' echoed value, ignoring the
//! corrupt up-send) applies from the next round.

/// FNV-1a 64-bit digest of a model vector's little-endian bytes. Not
/// cryptographic — the simulation's adversary model does not include
/// hash collisions — but stable across platforms and runs.
pub fn hash_update(update: &[f32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for x in update {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// The digests one audit instance compares for one cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EchoReport {
    /// Digest of the partial the leader sent upward.
    pub up_digest: u64,
    /// Digests of the partial each member received as the leader's echo.
    pub member_digests: Vec<u64>,
}

impl EchoReport {
    /// True when the up-sent value disagrees with the members' majority
    /// echo — equivocation. A report with no member echoes cannot
    /// convict (nothing to compare against).
    pub fn equivocated(&self) -> bool {
        if self.member_digests.is_empty() {
            return false;
        }
        let majority = majority_digest(&self.member_digests);
        self.up_digest != majority
    }
}

/// The most frequent digest (ties broken toward the smallest value, so
/// the audit is deterministic). A Byzantine *member* lying about its
/// echo cannot frame an honest leader unless liars outnumber honest
/// members.
fn majority_digest(digests: &[u64]) -> u64 {
    let mut sorted = digests.to_vec();
    sorted.sort_unstable();
    let mut best = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best = sorted[i];
        }
        i = j;
    }
    best
}

/// Audit cost for one cluster of `members` members: each member sends
/// one digest to the parent collector, and the leader's up-send is
/// already in flight (no extra message). Returns `(messages, bytes)` —
/// digests are 8 bytes.
pub fn echo_cost(members: usize) -> (u64, u64) {
    (members as u64, 8 * members as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_separating() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.0, 3.000001];
        assert_eq!(hash_update(&a), hash_update(&a));
        assert_ne!(hash_update(&a), hash_update(&b));
        assert_ne!(hash_update(&a), hash_update(&[]));
        // Sign matters (an equivocator's −flip·partial must not collide).
        assert_ne!(hash_update(&[1.0]), hash_update(&[-1.0]));
    }

    #[test]
    fn honest_leader_passes_audit() {
        let partial = [0.25f32, -0.5];
        let d = hash_update(&partial);
        let report = EchoReport {
            up_digest: d,
            member_digests: vec![d; 4],
        };
        assert!(!report.equivocated());
    }

    #[test]
    fn equivocator_is_detected() {
        let truth = [0.25f32, -0.5];
        let corrupt = [-0.25f32, 0.5];
        let report = EchoReport {
            up_digest: hash_update(&corrupt),
            member_digests: vec![hash_update(&truth); 4],
        };
        assert!(report.equivocated());
    }

    #[test]
    fn lying_minority_member_cannot_frame_the_leader() {
        let truth = hash_update(&[1.0f32]);
        let lie = hash_update(&[2.0f32]);
        let report = EchoReport {
            up_digest: truth,
            member_digests: vec![truth, truth, lie, truth],
        };
        assert!(!report.equivocated());
    }

    #[test]
    fn empty_echo_set_cannot_convict() {
        let report = EchoReport {
            up_digest: 7,
            member_digests: vec![],
        };
        assert!(!report.equivocated());
    }

    #[test]
    fn majority_tie_breaks_deterministically() {
        // 2 vs 2 tie: smallest digest wins, both runs agree.
        assert_eq!(majority_digest(&[5, 9, 9, 5]), 5);
        assert_eq!(majority_digest(&[9, 5, 5, 9]), 5);
    }

    #[test]
    fn echo_cost_is_digest_sized() {
        assert_eq!(echo_cost(4), (4, 32));
        assert_eq!(echo_cost(0), (0, 0));
    }
}
