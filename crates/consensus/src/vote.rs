//! Validation-vote consensus — the paper's top-level mechanism
//! (Appendix D.B, "inspired by Chen et al. [28]"):
//!
//! 1. every top-level node broadcasts its partial aggregated model;
//! 2. every node tests every received model on its private validation
//!    shard and up/down-votes it;
//! 3. "the partial models that receive the fewest number of positive
//!    votes are considered malicious, and are excluded";
//! 4. the surviving models are averaged into the global model.
//!
//! Voting rule: an honest voter upvotes every proposal whose score is
//! within a relative tolerance of the *best* score it measured (so a
//! poisoned proposal is downvoted by every honest voter no matter how
//! many poisoned proposals there are, and identical proposals are all
//! upvoted). A proposal survives when a strict majority of voters upvote
//! it; if nothing survives, the highest-voted proposal is kept — the
//! degenerate all-suspicious case must still decide.
//!
//! Byzantine voters invert their honest votes — the strongest vote
//! manipulation available inside this protocol. With `γ₁ = 25 %` (one
//! adversarial voter among four) a poisoned proposal still fails the
//! majority and an honest one still passes it.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// Which proposals the vote excludes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExcludePolicy {
    /// Exclude every proposal that fails a strict voter majority — the
    /// paper's "fewest positive votes are considered malicious" read with
    /// honest-majority voting (default).
    BelowMajority,
    /// Exclude exactly the `k` lowest-voted proposals (clamped so at
    /// least one survives). Useful for ablations.
    FewestK(usize),
}

/// Validation voting.
#[derive(Clone, Copy, Debug)]
pub struct VoteConsensus {
    policy: ExcludePolicy,
    /// Relative tolerance for upvoting: a proposal is upvoted when its
    /// score ≥ best − `rel_tol`·(best − worst).
    rel_tol: f64,
}

impl VoteConsensus {
    /// Vote with the given exclusion policy and the default tolerance.
    pub fn with_policy(policy: ExcludePolicy) -> Self {
        Self {
            policy,
            rel_tol: 0.2,
        }
    }

    /// The paper's configuration: majority survival.
    pub fn paper_default() -> Self {
        Self::with_policy(ExcludePolicy::BelowMajority)
    }

    /// Fixed-k exclusion (ablation variant).
    pub fn new(exclude: usize) -> Self {
        Self::with_policy(ExcludePolicy::FewestK(exclude))
    }

    /// Computes the vote matrix: `votes[v][p]` is voter `v`'s vote on
    /// proposal `p` (`true` = upvote). Byzantine voters invert their
    /// honest vote.
    pub fn vote_matrix(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        eval: &dyn ProposalEvaluator,
    ) -> Vec<Vec<bool>> {
        let n = proposals.len();
        (0..n)
            .map(|v| {
                let scores: Vec<f64> =
                    proposals.iter().map(|p| eval.score(v, p)).collect();
                let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
                let cut = best - self.rel_tol * (best - worst);
                scores
                    .iter()
                    .map(|s| {
                        let honest_vote = *s >= cut;
                        if byzantine[v] {
                            !honest_vote
                        } else {
                            honest_vote
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl Consensus for VoteConsensus {
    fn name(&self) -> &'static str {
        "validation-vote"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        eval: &dyn ProposalEvaluator,
        _rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        let votes = self.vote_matrix(proposals, byzantine, eval);
        let positives: Vec<usize> = (0..n)
            .map(|p| (0..n).filter(|&v| votes[v][p]).count())
            .collect();

        let mut excluded: Vec<usize> = match self.policy {
            ExcludePolicy::BelowMajority => {
                let majority = n / 2 + 1;
                (0..n).filter(|&p| positives[p] < majority).collect()
            }
            ExcludePolicy::FewestK(k) => {
                let mut order: Vec<usize> = (0..n).collect();
                // fewest positive votes first; ties exclude the higher
                // index for determinism.
                order.sort_by(|&a, &b| positives[a].cmp(&positives[b]).then(b.cmp(&a)));
                order[..k.min(n - 1)].to_vec()
            }
        };
        if excluded.len() == n {
            // Nothing survived: keep the best-voted proposal (highest
            // positives; ties keep the lowest index).
            let keep = (0..n)
                .max_by(|&a, &b| positives[a].cmp(&positives[b]).then(b.cmp(&a)))
                .expect("non-empty proposals");
            excluded.retain(|&p| p != keep);
        }
        excluded.sort_unstable();

        let survivors: Vec<&[f32]> = (0..n)
            .filter(|p| !excluded.contains(p))
            .map(|p| proposals[p])
            .collect();
        let mut decided = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&survivors, &mut decided);

        // Cost: each node broadcasts its model to the n−1 others, then
        // broadcasts its vote vector (counted at 8 bytes).
        let messages = (n * (n - 1) * 2) as u64;
        let bytes = (n * (n - 1)) as u64 * model_bytes(d) + (n * (n - 1)) as u64 * 8;
        ConsensusOutcome {
            decided,
            excluded,
            rounds: 2,
            messages,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    /// Three honest proposals near the origin, one poisoned far away.
    /// Voters score by proximity to honest references.
    fn setup() -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let proposals = vec![
            vec![0.0f32, 0.1],
            vec![0.1f32, 0.0],
            vec![0.05f32, 0.05],
            vec![50.0f32, 50.0],
        ];
        let mut own = proposals.clone();
        own[3] = vec![0.0, 0.0]; // poisoned node's *voter* is honest
        (proposals, own)
    }

    fn decide(
        proposals: &[Vec<f32>],
        own: &[Vec<f32>],
        byz: &[bool],
        vote: VoteConsensus,
    ) -> ConsensusOutcome {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(own);
        let mut rng = StdRng::seed_from_u64(1);
        vote.decide(&refs, byz, &eval, &mut rng)
    }

    #[test]
    fn excludes_the_poisoned_proposal() {
        let (proposals, own) = setup();
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::paper_default());
        assert_eq!(out.excluded, vec![3]);
        assert!(hfl_tensor::ops::norm(&out.decided) < 1.0);
    }

    #[test]
    fn excludes_two_poisoned_proposals() {
        // The 57.8 %-malicious regime: half the proposals are poisoned
        // but voters (validation data holders) are honest — majority
        // voting must drop both.
        let proposals = vec![
            vec![0.0f32, 0.1],
            vec![50.0f32, 50.0],
            vec![0.05f32, 0.05],
            vec![51.0f32, 49.0],
        ];
        let own = vec![vec![0.0f32, 0.0]; 4];
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::paper_default());
        assert_eq!(out.excluded, vec![1, 3]);
        assert!(hfl_tensor::ops::norm(&out.decided) < 1.0);
    }

    #[test]
    fn survives_three_of_four_poisoned() {
        // Even with 3 poisoned proposals the single honest one wins.
        let proposals = vec![
            vec![50.0f32, 50.0],
            vec![49.0f32, 51.0],
            vec![0.05f32, 0.05],
            vec![51.0f32, 49.0],
        ];
        let own = vec![vec![0.0f32, 0.0]; 4];
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::paper_default());
        assert_eq!(out.excluded, vec![0, 1, 3]);
        assert!(hfl_tensor::ops::norm(&out.decided) < 1.0);
    }

    #[test]
    fn byzantine_minority_voter_cannot_flip_outcome() {
        let (proposals, own) = setup();
        let byz = [false, true, false, false]; // γ1 = 25 %
        let out = decide(&proposals, &own, &byz, VoteConsensus::paper_default());
        assert_eq!(out.excluded, vec![3], "poisoned model must still lose");
    }

    #[test]
    fn all_identical_proposals_all_survive() {
        let proposals = vec![vec![1.0f32, 2.0]; 4];
        let own = proposals.clone();
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::paper_default());
        assert!(out.excluded.is_empty());
        assert_eq!(out.decided, vec![1.0, 2.0]);
    }

    #[test]
    fn fallback_keeps_best_when_nothing_survives() {
        // All-Byzantine voters invert everything; the fallback must still
        // decide deterministically and keep exactly one proposal.
        let (proposals, own) = setup();
        let byz = [true; 4];
        let out = decide(&proposals, &own, &byz, VoteConsensus::paper_default());
        assert_eq!(out.excluded.len(), 3);
    }

    #[test]
    fn fewest_k_policy_is_exact() {
        let (proposals, own) = setup();
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::new(2));
        assert_eq!(out.excluded.len(), 2);
        assert!(out.excluded.contains(&3), "worst proposal must be excluded");
        // Clamped to keep one survivor.
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::new(10));
        assert_eq!(out.excluded.len(), 3);
    }

    #[test]
    fn reports_quadratic_message_cost() {
        let (proposals, own) = setup();
        let out = decide(&proposals, &own, &[false; 4], VoteConsensus::paper_default());
        assert_eq!(out.messages, (4 * 3 * 2) as u64);
        assert!(out.bytes > 4 * 3 * 8);
    }
}
