//! Committee-based consensus (Li et al., IEEE Network 2021 style).
//!
//! A randomly sampled committee of `size` nodes scores every proposal on
//! its validation data; committee scores are combined by median (robust to
//! Byzantine committee members), the `exclude` lowest-median proposals are
//! dropped, and the survivors are averaged. Compared with full validation
//! voting, only committee members evaluate and broadcast — cost scales
//! with `size · n` instead of `n²`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// Committee consensus with `size` members excluding `exclude` proposals.
#[derive(Clone, Copy, Debug)]
pub struct CommitteeConsensus {
    size: usize,
    exclude: usize,
}

impl CommitteeConsensus {
    /// A committee of `size` members excluding the `exclude` lowest-scored
    /// proposals (both clamped at run time).
    ///
    /// # Panics
    /// If `size == 0`.
    pub fn new(size: usize, exclude: usize) -> Self {
        assert!(size > 0, "committee must have at least one member");
        Self { size, exclude }
    }
}

impl Consensus for CommitteeConsensus {
    fn name(&self) -> &'static str {
        "committee"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        eval: &dyn ProposalEvaluator,
        rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        let size = self.size.min(n);
        // Sample the committee uniformly (stake-weighted selection would
        // slot in here; uniform matches our equal-stake setting).
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let committee = &ids[..size];

        // Median committee score per proposal; Byzantine members report
        // inverted (negated) scores — the strongest in-protocol lie.
        let mut med_scores: Vec<(f64, usize)> = (0..n)
            .map(|p| {
                let mut scores: Vec<f64> = committee
                    .iter()
                    .map(|&m| {
                        let s = eval.score(m, proposals[p]);
                        if byzantine[m] {
                            -s
                        } else {
                            s
                        }
                    })
                    .collect();
                scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
                (scores[scores.len() / 2], p)
            })
            .collect();
        med_scores.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN").then(b.1.cmp(&a.1)));
        let k = self.exclude.min(n - 1);
        let mut excluded: Vec<usize> = med_scores[..k].iter().map(|(_, p)| *p).collect();
        excluded.sort_unstable();

        let survivors: Vec<&[f32]> = (0..n)
            .filter(|p| !excluded.contains(p))
            .map(|p| proposals[p])
            .collect();
        let mut decided = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&survivors, &mut decided);

        // Cost: every node sends its model to each committee member
        // (n·size model transfers), each member broadcasts its score
        // vector to all nodes (size·n scalar messages), and the decided
        // model is broadcast by the committee (size·n transfers at most;
        // we count one representative broadcast of n messages).
        let messages = (n * size + size * n + n) as u64;
        let bytes =
            (n * size) as u64 * model_bytes(d) + (size * n) as u64 * 8 + n as u64 * model_bytes(d);
        ConsensusOutcome {
            decided,
            excluded,
            rounds: 3,
            messages,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    fn setup() -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let proposals = vec![
            vec![0.0f32, 0.0],
            vec![0.1f32, 0.1],
            vec![-0.1f32, 0.0],
            vec![40.0f32, -40.0],
        ];
        let mut own = proposals.clone();
        own[3] = vec![0.0, 0.0];
        (proposals, own)
    }

    #[test]
    fn committee_excludes_outlier() {
        let (proposals, own) = setup();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&own);
        let mut rng = StdRng::seed_from_u64(3);
        let out =
            CommitteeConsensus::new(3, 1).decide(&refs, &[false; 4], &eval, &mut rng);
        assert_eq!(out.excluded, vec![3]);
        assert!(hfl_tensor::ops::norm(&out.decided) < 1.0);
    }

    #[test]
    fn byzantine_committee_minority_tolerated() {
        let (proposals, own) = setup();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&own);
        // Whole-committee runs with node 1 Byzantine: median of 3 scores
        // survives one liar regardless of committee draw.
        let byz = [false, true, false, false];
        let mut rng = StdRng::seed_from_u64(4);
        let out = CommitteeConsensus::new(3, 1).decide(&refs, &byz, &eval, &mut rng);
        assert_eq!(out.excluded, vec![3]);
    }

    #[test]
    fn committee_size_clamped() {
        let proposals = vec![vec![1.0f32], vec![1.5f32]];
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&proposals);
        let mut rng = StdRng::seed_from_u64(5);
        // size 10 > n=2 must not panic
        let out = CommitteeConsensus::new(10, 0).decide(&refs, &[false; 2], &eval, &mut rng);
        assert!(out.excluded.is_empty());
        assert!((out.decided[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn cheaper_than_full_vote_for_small_committee() {
        let n = 16usize;
        let proposals: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 * 0.01; 8]).collect();
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&proposals);
        let byz = vec![false; n];
        let mut rng = StdRng::seed_from_u64(6);
        let committee = CommitteeConsensus::new(4, 1).decide(&refs, &byz, &eval, &mut rng);
        let vote = crate::VoteConsensus::new(1).decide(&refs, &byz, &eval, &mut rng);
        assert!(
            committee.bytes < vote.bytes,
            "committee {} !< vote {}",
            committee.bytes,
            vote.bytes
        );
    }
}
