//! Proposal evaluators: how an honest node scores a proposed model.

use hfl_ml::{Dataset, Model};

/// Scores a proposal from one node's local perspective (higher = better).
pub trait ProposalEvaluator: Sync {
    /// Score of `params` as judged by node `voter`.
    fn score(&self, voter: usize, params: &[f32]) -> f64;
}

/// Accuracy-based evaluator (the paper's top-level mechanism): node `i`
/// evaluates a proposal by loading it into a model and measuring accuracy
/// on its private validation shard — the 10 000 MNIST test images split
/// evenly over the top-level nodes (Appendix D.B).
pub struct AccuracyEvaluator {
    template: Box<dyn Model>,
    shards: Vec<Dataset>,
}

impl AccuracyEvaluator {
    /// Builds the evaluator from a model template (architecture donor)
    /// and one validation shard per voter.
    pub fn new(template: Box<dyn Model>, shards: Vec<Dataset>) -> Self {
        assert!(!shards.is_empty(), "need at least one validation shard");
        assert!(
            shards.iter().all(|s| !s.is_empty()),
            "validation shards must be non-empty"
        );
        Self { template, shards }
    }

    /// Number of voters this evaluator can serve.
    pub fn voters(&self) -> usize {
        self.shards.len()
    }
}

impl ProposalEvaluator for AccuracyEvaluator {
    fn score(&self, voter: usize, params: &[f32]) -> f64 {
        assert!(voter < self.shards.len(), "voter index out of range");
        let mut model = self.template.clone_box();
        model.set_params(params);
        hfl_ml::metrics::accuracy(model.as_ref(), &self.shards[voter])
    }
}

/// Distance-based evaluator for tests and for deployments without local
/// validation data: node `i` scores a proposal by proximity to its own
/// proposal (negated distance).
pub struct DistanceEvaluator {
    own: Vec<Vec<f32>>,
}

impl DistanceEvaluator {
    /// One reference vector per voter (typically each node's own
    /// proposal).
    pub fn new(own: &[Vec<f32>]) -> Self {
        assert!(!own.is_empty(), "need at least one reference vector");
        Self { own: own.to_vec() }
    }
}

impl ProposalEvaluator for DistanceEvaluator {
    fn score(&self, voter: usize, params: &[f32]) -> f64 {
        assert!(voter < self.own.len(), "voter index out of range");
        -hfl_tensor::ops::dist(&self.own[voter], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_ml::LinearSoftmax;

    #[test]
    fn distance_evaluator_prefers_nearby() {
        let own = vec![vec![0.0f32, 0.0]];
        let ev = DistanceEvaluator::new(&own);
        assert!(ev.score(0, &[0.1, 0.0]) > ev.score(0, &[5.0, 5.0]));
    }

    #[test]
    fn accuracy_evaluator_scores_models() {
        // A 1-dim 2-class task: class 1 iff x > 0.
        let mut shard = Dataset::empty(1, 2);
        shard.push(&[-1.0], 0);
        shard.push(&[1.0], 1);
        shard.push(&[-2.0], 0);
        shard.push(&[2.0], 1);
        let template: Box<dyn Model> = Box::new(LinearSoftmax::new(1, 2));
        let ev = AccuracyEvaluator::new(template, vec![shard]);

        let good = [-5.0f32, 5.0, 0.0, 0.0]; // predicts sign(x)
        let bad = [5.0f32, -5.0, 0.0, 0.0]; // inverted
        assert_eq!(ev.score(0, &good), 1.0);
        assert_eq!(ev.score(0, &bad), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_voter_panics() {
        let ev = DistanceEvaluator::new(&[vec![0.0f32]]);
        ev.score(3, &[0.0]);
    }
}
