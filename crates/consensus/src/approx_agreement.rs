//! Multidimensional approximate ε-agreement (Mendes & Herlihy, STOC 2013
//! lineage, in the polynomial trimmed-iteration style of validated
//! Byzantine asynchronous agreement).
//!
//! Nodes repeatedly exchange their current vectors; each honest node
//! replaces its value with the coordinate-wise `trim`-trimmed mean of the
//! received multiset. Byzantine nodes inject extreme values every round.
//! With `n ≥ 3·trim + 1` and per-coordinate trimming, honest values stay
//! inside the honest convex hull per coordinate and the honest diameter
//! contracts geometrically, so the protocol reaches any `ε > 0` in
//! O(log(diam/ε)) rounds.

use rand::rngs::StdRng;

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// Iterated trimmed-mean approximate agreement.
#[derive(Clone, Copy, Debug)]
pub struct ApproxAgreement {
    epsilon: f64,
    trim: usize,
    /// Safety cap on rounds (the contraction argument bounds the true
    /// round count well below this).
    pub max_rounds: usize,
}

impl ApproxAgreement {
    /// Agreement to honest-diameter `epsilon`, trimming `trim` extreme
    /// values per side of every coordinate each round.
    ///
    /// # Panics
    /// If `epsilon <= 0`.
    pub fn new(epsilon: f64, trim: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            epsilon,
            trim,
            max_rounds: 64,
        }
    }

    /// Max coordinate-wise spread among the honest nodes' values.
    fn honest_diameter(values: &[Vec<f32>], byzantine: &[bool]) -> f64 {
        let honest: Vec<&Vec<f32>> = values
            .iter()
            .zip(byzantine)
            .filter(|(_, b)| !**b)
            .map(|(v, _)| v)
            .collect();
        if honest.len() < 2 {
            return 0.0;
        }
        let d = honest[0].len();
        let mut max_spread = 0.0f64;
        for j in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for h in &honest {
                lo = lo.min(h[j] as f64);
                hi = hi.max(h[j] as f64);
            }
            max_spread = max_spread.max(hi - lo);
        }
        max_spread
    }
}

impl Consensus for ApproxAgreement {
    fn name(&self) -> &'static str {
        "approx-agreement"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        _eval: &dyn ProposalEvaluator,
        rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        let honest_count = byzantine.iter().filter(|b| !**b).count();
        assert!(honest_count > 0, "no honest nodes");
        let trim = self.trim.min((n - 1) / 2);
        assert!(
            n > 3 * trim || byzantine.iter().all(|b| !b),
            "approximate agreement needs n > 3·trim with Byzantine nodes (n={n}, trim={trim})"
        );

        let mut values: Vec<Vec<f32>> = proposals.iter().map(|p| p.to_vec()).collect();
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut rounds = 0usize;
        while Self::honest_diameter(&values, byzantine) > self.epsilon
            && rounds < self.max_rounds
        {
            rounds += 1;
            // Byzantine nodes broadcast adversarial extremes this round.
            let mut sent: Vec<Vec<f32>> = values.clone();
            for (i, b) in byzantine.iter().enumerate() {
                if *b {
                    // Alternate huge positive / negative values to maximize
                    // the chance of dragging trimmed statistics.
                    let sign = if rand::Rng::gen_bool(rng, 0.5) { 1.0 } else { -1.0 };
                    sent[i] = vec![sign * 1e9; d];
                }
            }
            // All-to-all exchange.
            messages += (n * (n - 1)) as u64;
            bytes += (n * (n - 1)) as u64 * model_bytes(d);
            // Honest update: trimmed mean of all received values.
            let refs: Vec<&[f32]> = sent.iter().map(|v| v.as_slice()).collect();
            let mut next = values.clone();
            for (i, b) in byzantine.iter().enumerate() {
                if !*b {
                    hfl_tensor::stats::coordinate_trimmed_mean(&refs, trim, &mut next[i]);
                }
            }
            values = next;
        }
        assert!(
            Self::honest_diameter(&values, byzantine) <= self.epsilon,
            "agreement failed to contract within {} rounds",
            self.max_rounds
        );

        // Decided value: mean of honest final values (all within ε).
        let honest: Vec<&[f32]> = values
            .iter()
            .zip(byzantine)
            .filter(|(_, b)| !**b)
            .map(|(v, _)| v.as_slice())
            .collect();
        let mut decided = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&honest, &mut decided);
        ConsensusOutcome {
            decided,
            excluded: Vec::new(),
            rounds,
            messages,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    fn run(
        proposals: &[Vec<f32>],
        byz: &[bool],
        epsilon: f64,
        trim: usize,
    ) -> ConsensusOutcome {
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(proposals);
        let mut rng = StdRng::seed_from_u64(2);
        ApproxAgreement::new(epsilon, trim).decide(&refs, byz, &eval, &mut rng)
    }

    #[test]
    fn all_honest_converges_to_hull() {
        let proposals = vec![
            vec![0.0f32, 0.0],
            vec![1.0f32, 2.0],
            vec![2.0f32, 4.0],
            vec![3.0f32, 6.0],
        ];
        let out = run(&proposals, &[false; 4], 1e-3, 0);
        assert!(out.rounds > 0);
        // decided value inside the hull
        assert!(out.decided[0] >= 0.0 && out.decided[0] <= 3.0);
        assert!(out.decided[1] >= 0.0 && out.decided[1] <= 6.0);
    }

    #[test]
    fn byzantine_extremes_are_trimmed() {
        let proposals = vec![
            vec![1.0f32],
            vec![1.2f32],
            vec![0.8f32],
            vec![1.1f32],
            vec![0.9f32],
            vec![1.0f32],
            vec![5.0f32], // Byzantine (its proposal also garbage)
        ];
        let byz = [false, false, false, false, false, false, true];
        let out = run(&proposals, &byz, 1e-3, 2);
        assert!(
            (out.decided[0] - 1.0).abs() < 0.8,
            "decided {} dragged by adversary",
            out.decided[0]
        );
    }

    #[test]
    fn already_agreed_needs_zero_rounds() {
        let proposals = vec![vec![2.0f32], vec![2.0f32], vec![2.0f32], vec![2.0f32]];
        let out = run(&proposals, &[false; 4], 1e-3, 1);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.decided, vec![2.0]);
    }

    #[test]
    fn rounds_grow_with_precision() {
        let proposals = vec![vec![0.0f32], vec![10.0f32], vec![5.0f32], vec![2.0f32]];
        let coarse = run(&proposals, &[false; 4], 1.0, 0);
        let fine = run(&proposals, &[false; 4], 1e-6, 0);
        assert!(fine.rounds >= coarse.rounds);
    }

    #[test]
    #[should_panic(expected = "n > 3·trim")]
    fn too_much_trim_with_byzantine_panics() {
        let proposals = vec![vec![0.0f32], vec![1.0f32], vec![2.0f32]];
        let byz = [false, false, true];
        run(&proposals, &byz, 1e-3, 1);
    }
}
