//! The quorum rule of Algorithm 4, in one place.
//!
//! Leaders collect updates "until quorum or Timeout": the quorum over
//! `present` potential contributors at quorum fraction `φ` is
//! `⌈φ·present⌉`, clamped to at least one contributor (an aggregation
//! of zero inputs is meaningless) and at most everyone present. The
//! synchronous runner, the pipelined driver and the fault-degraded
//! paths all call this one function so their numerics can never drift
//! apart.

/// `⌈phi·present⌉`, clamped to `[1, present]` (and to 1 when nobody is
/// present, leaving the degenerate case to the caller).
///
/// The product is nudged down by one part in 10¹² before the ceiling:
/// IEEE multiplication can land a hair *above* an exact integer (e.g.
/// `0.07 × 100 = 7.000000000000001`), which a bare `ceil` would round
/// to one contributor more than `⌈φ·present⌉` asks for. The nudge is
/// orders of magnitude wider than the error of a single multiplication
/// and orders of magnitude narrower than any meaningful φ step, so it
/// restores the mathematical ceiling without disturbing genuine
/// fractional products.
pub fn quorum_size(phi: f64, present: usize) -> usize {
    let raw = phi * present as f64;
    let adjusted = raw - raw.abs() * 1e-12;
    (adjusted.ceil() as usize).clamp(1, present.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_quorum_takes_everyone() {
        assert_eq!(quorum_size(1.0, 4), 4);
        assert_eq!(quorum_size(1.0, 1), 1);
    }

    #[test]
    fn fractional_quorum_rounds_up() {
        assert_eq!(quorum_size(0.5, 4), 2);
        assert_eq!(quorum_size(0.5, 5), 3);
        assert_eq!(quorum_size(0.75, 4), 3);
        assert_eq!(quorum_size(0.6, 5), 3);
    }

    #[test]
    fn at_least_one_contributor() {
        assert_eq!(quorum_size(0.01, 4), 1);
        assert_eq!(quorum_size(0.1, 1), 1);
    }

    #[test]
    fn degenerate_empty_present() {
        assert_eq!(quorum_size(1.0, 0), 1);
        assert_eq!(quorum_size(0.5, 0), 1);
        assert_eq!(quorum_size(0.0, 0), 1);
    }

    #[test]
    fn single_member_quorum_is_always_one() {
        for phi in [0.0, 0.01, 0.5, 0.999, 1.0] {
            assert_eq!(quorum_size(phi, 1), 1, "phi = {phi}");
        }
    }

    #[test]
    fn float_slop_does_not_inflate_exact_products() {
        // 0.07 × 100 is 7.000000000000001 in IEEE arithmetic; a bare
        // ceil would demand 8 contributors where ⌈φ·present⌉ says 7.
        assert_eq!(quorum_size(0.07, 100), 7);
        // 2/3 of 3 members: the product 2.0000000000000004 must read
        // as the mathematical 2, not round up to all three.
        assert_eq!(quorum_size(2.0 / 3.0, 3), 2);
        // Exact dyadic products are untouched by the nudge.
        assert_eq!(quorum_size(0.75, 4), 3);
        assert_eq!(quorum_size(0.5, 8), 4);
    }

    #[test]
    fn boundary_crossings_still_round_up() {
        // Just above a ceiling boundary: a genuinely fractional excess
        // (far wider than the nudge) must still round up...
        assert_eq!(quorum_size(0.7 + 1e-9, 10), 8);
        // ...and just below it must not.
        assert_eq!(quorum_size(0.7 - 1e-9, 10), 7);
        // Products that IEEE places slightly *below* the exact integer
        // (0.3 × 10 = 2.9999999999999996) keep rounding up to it.
        assert_eq!(quorum_size(0.3, 10), 3);
    }

    #[test]
    fn never_exceeds_present() {
        // ceil(0.9999... * n) with float slop must still clamp to n.
        for n in 1..20 {
            assert!(quorum_size(1.0, n) <= n);
            assert!(quorum_size(0.9999999, n) <= n);
        }
    }
}
