//! The quorum rule of Algorithm 4, in one place.
//!
//! Leaders collect updates "until quorum or Timeout": the quorum over
//! `present` potential contributors at quorum fraction `φ` is
//! `⌈φ·present⌉`, clamped to at least one contributor (an aggregation
//! of zero inputs is meaningless) and at most everyone present. The
//! synchronous runner, the pipelined driver and the fault-degraded
//! paths all call this one function so their numerics can never drift
//! apart.

/// `⌈phi·present⌉`, clamped to `[1, present]` (and to 1 when nobody is
/// present, leaving the degenerate case to the caller).
pub fn quorum_size(phi: f64, present: usize) -> usize {
    ((phi * present as f64).ceil() as usize).clamp(1, present.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_quorum_takes_everyone() {
        assert_eq!(quorum_size(1.0, 4), 4);
        assert_eq!(quorum_size(1.0, 1), 1);
    }

    #[test]
    fn fractional_quorum_rounds_up() {
        assert_eq!(quorum_size(0.5, 4), 2);
        assert_eq!(quorum_size(0.5, 5), 3);
        assert_eq!(quorum_size(0.75, 4), 3);
        assert_eq!(quorum_size(0.6, 5), 3);
    }

    #[test]
    fn at_least_one_contributor() {
        assert_eq!(quorum_size(0.01, 4), 1);
        assert_eq!(quorum_size(0.1, 1), 1);
    }

    #[test]
    fn degenerate_empty_present() {
        assert_eq!(quorum_size(1.0, 0), 1);
    }

    #[test]
    fn never_exceeds_present() {
        // ceil(0.9999... * n) with float slop must still clamp to n.
        for n in 1..20 {
            assert!(quorum_size(1.0, n) <= n);
            assert!(quorum_size(0.9999999, n) <= n);
        }
    }
}
