//! Stake-weighted validation voting — the PoS-inspired consensus family
//! of Table II (Chen et al.'s robust blockchained FL votes with
//! stake-proportional weight; here stake generalizes the uniform vote of
//! [`crate::vote`]).
//!
//! Identical voting rule to [`crate::VoteConsensus`] (upvote proposals
//! within a relative tolerance of the voter's best score; Byzantine
//! voters invert), but each voter's vote carries its stake, and a
//! proposal survives only with a strict majority of *total stake*.

use rand::rngs::StdRng;

use crate::eval::ProposalEvaluator;
use crate::{model_bytes, validate, Consensus, ConsensusOutcome};

/// Stake-weighted majority voting.
#[derive(Clone, Debug)]
pub struct StakeVote {
    stakes: Vec<f64>,
    rel_tol: f64,
}

impl StakeVote {
    /// Voting with explicit per-node stakes (any non-negative weights,
    /// not all zero).
    ///
    /// # Panics
    /// If stakes are empty, negative, or sum to zero.
    pub fn new(stakes: Vec<f64>) -> Self {
        assert!(!stakes.is_empty(), "need at least one stake");
        assert!(
            stakes.iter().all(|s| *s >= 0.0),
            "stakes must be non-negative"
        );
        assert!(
            stakes.iter().sum::<f64>() > 0.0,
            "total stake must be positive"
        );
        Self {
            stakes,
            rel_tol: 0.2,
        }
    }

    /// Uniform stakes — degenerates to plain majority voting.
    pub fn uniform(n: usize) -> Self {
        Self::new(vec![1.0; n])
    }

    /// The stake vector.
    pub fn stakes(&self) -> &[f64] {
        &self.stakes
    }
}

impl Consensus for StakeVote {
    fn name(&self) -> &'static str {
        "stake-vote"
    }

    fn decide(
        &self,
        proposals: &[&[f32]],
        byzantine: &[bool],
        eval: &dyn ProposalEvaluator,
        _rng: &mut StdRng,
    ) -> ConsensusOutcome {
        let (n, d) = validate(proposals, byzantine);
        assert_eq!(
            self.stakes.len(),
            n,
            "stake vector length must match node count"
        );
        let total: f64 = self.stakes.iter().sum();

        // Stake-weighted positive vote mass per proposal.
        let mut mass = vec![0.0f64; n];
        for (v, &bad) in byzantine.iter().enumerate().take(n) {
            let scores: Vec<f64> = proposals.iter().map(|p| eval.score(v, p)).collect();
            let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let cut = best - self.rel_tol * (best - worst);
            for (p, s) in scores.iter().enumerate() {
                let up = if bad { *s < cut } else { *s >= cut };
                if up {
                    mass[p] += self.stakes[v];
                }
            }
        }

        let mut excluded: Vec<usize> = (0..n).filter(|&p| mass[p] * 2.0 <= total).collect();
        if excluded.len() == n {
            let keep = (0..n)
                .max_by(|&a, &b| {
                    mass[a]
                        .partial_cmp(&mass[b])
                        .expect("NaN vote mass")
                        .then(b.cmp(&a))
                })
                .expect("non-empty proposals");
            excluded.retain(|&p| p != keep);
        }

        let survivors: Vec<&[f32]> = (0..n)
            .filter(|p| !excluded.contains(p))
            .map(|p| proposals[p])
            .collect();
        let mut decided = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&survivors, &mut decided);

        let messages = (n * (n - 1) * 2) as u64;
        let bytes = (n * (n - 1)) as u64 * model_bytes(d) + (n * (n - 1)) as u64 * 8;
        ConsensusOutcome {
            decided,
            excluded,
            rounds: 2,
            messages,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DistanceEvaluator;
    use rand::SeedableRng;

    fn decide(stakes: Vec<f64>, byz: &[bool]) -> ConsensusOutcome {
        // proposals: 3 honest near origin, 1 poisoned far away.
        let proposals = vec![
            vec![0.0f32, 0.1],
            vec![0.1f32, 0.0],
            vec![0.05f32, 0.05],
            vec![50.0f32, 50.0],
        ];
        let mut own = proposals.clone();
        own[3] = vec![0.0, 0.0];
        let refs: Vec<&[f32]> = proposals.iter().map(|p| p.as_slice()).collect();
        let eval = DistanceEvaluator::new(&own);
        let mut rng = StdRng::seed_from_u64(1);
        StakeVote::new(stakes).decide(&refs, byz, &eval, &mut rng)
    }

    #[test]
    fn uniform_stakes_match_majority_vote() {
        let out = decide(vec![1.0; 4], &[false; 4]);
        assert_eq!(out.excluded, vec![3]);
    }

    #[test]
    fn high_stake_honest_voter_dominates() {
        // One honest whale (stake 10) plus three Byzantine voters: the
        // whale's upvotes carry a strict majority of the stake.
        let out = decide(vec![10.0, 1.0, 1.0, 1.0], &[false, true, true, true]);
        assert_eq!(
            out.excluded,
            vec![3],
            "whale should protect honest proposals"
        );
    }

    #[test]
    fn byzantine_whale_forces_fallback_or_damage() {
        // A Byzantine whale inverts votes with majority stake: everything
        // honest fails the majority — the mechanism degrades (documented
        // PoS failure mode when stake concentrates adversarially).
        let out = decide(vec![10.0, 1.0, 1.0, 1.0], &[true, false, false, false]);
        // The poisoned proposal survives the whale's upvote.
        assert!(!out.excluded.contains(&3));
    }

    #[test]
    fn zero_stake_voter_is_ignored() {
        let a = decide(vec![1.0, 1.0, 1.0, 0.0], &[false, false, false, true]);
        let b = decide(vec![1.0, 1.0, 1.0, 0.0], &[false; 4]);
        assert_eq!(
            a.excluded, b.excluded,
            "zero-stake Byzantine flip changed outcome"
        );
    }

    #[test]
    #[should_panic(expected = "stake vector length")]
    fn wrong_stake_length_panics() {
        decide(vec![1.0; 3], &[false; 4]);
    }

    #[test]
    #[should_panic(expected = "total stake")]
    fn all_zero_stakes_rejected() {
        StakeVote::new(vec![0.0; 4]);
    }
}
