//! Telemetry adapters: one call records a [`ConsensusOutcome`]'s cost
//! and exclusion profile into a metrics registry, labelled by mechanism
//! so the scheme-comparison experiments (Tables III/IV) can read
//! per-mechanism totals straight out of a run manifest.

use hfl_telemetry::Registry;

use crate::ConsensusOutcome;

/// Records one consensus instance into `registry`, labelled
/// `mechanism=<name>` (use [`crate::Consensus::name`]):
///
/// * `consensus_instances_total` — decided instances,
/// * `consensus_excluded_total` — proposals excluded as suspicious,
/// * `consensus_rounds_total` — protocol rounds executed,
/// * `consensus_messages_total` / `consensus_bytes_total` — cost.
pub fn record_outcome(registry: &Registry, mechanism: &'static str, out: &ConsensusOutcome) {
    let labels = [("mechanism", mechanism)];
    registry.counter("consensus_instances_total", &labels).inc(1);
    registry
        .counter("consensus_excluded_total", &labels)
        .inc(out.excluded.len() as u64);
    registry
        .counter("consensus_rounds_total", &labels)
        .inc(out.rounds as u64);
    registry
        .counter("consensus_messages_total", &labels)
        .inc(out.messages);
    registry.counter("consensus_bytes_total", &labels).inc(out.bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accumulates_under_mechanism_label() {
        let registry = Registry::new();
        let out = ConsensusOutcome {
            decided: vec![0.0],
            excluded: vec![2, 5],
            rounds: 3,
            messages: 40,
            bytes: 640,
        };
        record_outcome(&registry, "vote", &out);
        record_outcome(&registry, "vote", &out);
        record_outcome(&registry, "pbft", &out);

        let labels = [("mechanism", "vote")];
        assert_eq!(registry.counter("consensus_instances_total", &labels).get(), 2);
        assert_eq!(registry.counter("consensus_excluded_total", &labels).get(), 4);
        assert_eq!(registry.counter("consensus_rounds_total", &labels).get(), 6);
        assert_eq!(registry.counter("consensus_messages_total", &labels).get(), 80);
        assert_eq!(registry.counter("consensus_bytes_total", &labels).get(), 1280);
        let pbft = [("mechanism", "pbft")];
        assert_eq!(registry.counter("consensus_instances_total", &pbft).get(), 1);
    }
}
