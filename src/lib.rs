//! # abd-hfl
//!
//! Facade crate for the ABD-HFL reproduction: re-exports the public API of
//! every subsystem so examples, integration tests and downstream users need
//! a single dependency.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use abd_hfl_core as core;
pub use hfl_attacks as attacks;
pub use hfl_consensus as consensus;
pub use hfl_faults as faults;
pub use hfl_ml as ml;
pub use hfl_oracle as oracle;
pub use hfl_parallel as parallel;
pub use hfl_robust as robust;
pub use hfl_simnet as simnet;
pub use hfl_snapshot as snapshot;
pub use hfl_telemetry as telemetry;
pub use hfl_tensor as tensor;
