//! Resume-at-round-k integration tests for the snapshot subsystem.
//!
//! For every fixture class of `tests/golden_manifests.rs` (clean,
//! faulted, armed, withholding) the engine is run straight through,
//! then re-run as capture-at-round-k + resume, and the two final
//! manifests must be **byte-identical** — same RNG stream order, same
//! cost accounting, same metric export. The snapshot also crosses the
//! binary and JSON codecs on the way, so the persisted form is what is
//! proven, and the error paths (`version`, `base_hash`, truncation)
//! are pinned.

use abd_hfl::attacks::{AdaptiveAttack, ModelAttack, Placement, ProtocolAttack};
use abd_hfl::core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl::core::run::{resume, resume_with};
use abd_hfl::core::runner::{
    base_config_hash, resume_prepared_with, run_prepared_snapshotting, run_prepared_with,
    Experiment, ResumeError,
};
use abd_hfl::faults::FaultPlan;
use abd_hfl::ml::synth::SynthConfig;
use abd_hfl::robust::SuspicionConfig;
use abd_hfl::snapshot::{EngineSnapshot, SNAPSHOT_VERSION};
use abd_hfl::telemetry::Telemetry;

/// The shared small task (mirrors the golden fixtures' base).
fn base(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 4;
    cfg.eval_every = 2;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    cfg
}

fn clean_fixture() -> HflConfig {
    let mut cfg = base(AttackCfg::None, 2024);
    cfg.quorum = 0.75;
    cfg.churn_leave_prob = 0.1;
    cfg
}

fn faulted_fixture() -> HflConfig {
    let mut cfg = base(AttackCfg::None, 2025);
    cfg.quorum = 0.75;
    let split: Vec<usize> = (0..24).collect();
    let rest: Vec<usize> = (24..64).collect();
    cfg.faults = Some(
        FaultPlan::new()
            .crash_stop(1, 2)
            .kill_leader(1, 2, 1, None)
            .partition(2, vec![split, rest], 3)
            .straggler(1, 6, 8.0, None),
    );
    cfg
}

fn armed_fixture() -> HflConfig {
    let mut cfg = base(
        AttackCfg::Adaptive {
            attack: AdaptiveAttack::alie_default(),
            proportion: 0.25,
            placement: Placement::Prefix,
        },
        2026,
    );
    cfg.suspicion = Some(SuspicionConfig::default());
    cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
    cfg
}

fn withhold_fixture() -> HflConfig {
    let mut cfg = base(
        AttackCfg::Model {
            attack: ModelAttack::SignFlip { scale: 2.0 },
            proportion: 0.25,
            placement: Placement::Random,
        },
        2027,
    );
    cfg.quorum = 0.75;
    cfg.levels[2] = LevelAgg::Cba(abd_hfl::consensus::ConsensusKind::VoteMajority);
    cfg.suspicion = Some(SuspicionConfig::default());
    cfg.protocol_attack = Some(ProtocolAttack::Withhold);
    cfg
}

/// Straight-through run + the snapshot captured at round 2.
fn run_and_capture(cfg: &HflConfig) -> (String, EngineSnapshot) {
    let exp = Experiment::prepare(cfg);
    let (telem, _rec) = Telemetry::recording();
    let (straight, snapshots) = run_prepared_snapshotting(&exp, &telem, 2);
    let snap = snapshots
        .into_iter()
        .find(|s| s.round == 2)
        .expect("snapshot at round 2");
    (straight.manifest.to_json(), snap)
}

/// Resumes `snap` under `cfg` (fresh preparation, fresh telemetry) and
/// returns the final manifest JSON.
fn resume_manifest(cfg: &HflConfig, snap: &EngineSnapshot) -> String {
    let exp = Experiment::prepare(cfg);
    let (telem, _rec) = Telemetry::recording();
    let run = resume_prepared_with(&exp, &telem, snap).expect("resume must be accepted");
    run.manifest.to_json()
}

fn assert_resume_identical(name: &str, cfg: &HflConfig) {
    let (straight, snap) = run_and_capture(cfg);

    // Through the binary codec (the on-disk format).
    let snap = EngineSnapshot::from_bytes(&snap.to_bytes())
        .unwrap_or_else(|e| panic!("{name}: binary round-trip failed: {e}"));
    // And through the JSON codec for good measure.
    let snap = EngineSnapshot::from_json(&snap.to_json())
        .unwrap_or_else(|e| panic!("{name}: json round-trip failed: {e}"));

    let resumed = resume_manifest(cfg, &snap);
    assert_eq!(
        straight, resumed,
        "{name}: resume-at-round-2 manifest differs from straight-through"
    );
}

#[test]
fn clean_resume_is_byte_identical() {
    assert_resume_identical("clean", &clean_fixture());
}

#[test]
fn faulted_resume_is_byte_identical() {
    assert_resume_identical("faulted", &faulted_fixture());
}

#[test]
fn armed_resume_is_byte_identical() {
    assert_resume_identical("armed", &armed_fixture());
}

#[test]
fn withholding_resume_is_byte_identical() {
    assert_resume_identical("withhold", &withhold_fixture());
}

/// The public `run::resume` entry continues a checkpoint under a
/// horizon-*extended* config: only `rounds`/`eval_every` may differ
/// from the capture config (same `base_config_hash`).
#[test]
fn resume_extends_the_horizon() {
    let cfg = clean_fixture();
    let (_, snap) = run_and_capture(&cfg);

    let mut longer = cfg.clone();
    longer.rounds = 6;
    assert_eq!(base_config_hash(&cfg), base_config_hash(&longer));

    let extended = resume(&snap, &longer).expect("horizon extension must resume");
    let (telem, _rec) = Telemetry::recording();
    let straight = run_prepared_with(&Experiment::prepare(&longer), &telem);
    assert_eq!(
        extended.final_accuracy, straight.result.final_accuracy,
        "extended resume must land where the straight 6-round run lands"
    );
    assert_eq!(extended.messages, straight.result.messages);
    assert_eq!(extended.bytes, straight.result.bytes);
}

#[test]
fn resume_rejects_a_version_skew() {
    let cfg = clean_fixture();
    let (_, mut snap) = run_and_capture(&cfg);
    snap.version = SNAPSHOT_VERSION + 1;
    match resume(&snap, &cfg) {
        Err(ResumeError::Version { found }) => assert_eq!(found, SNAPSHOT_VERSION + 1),
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn resume_rejects_a_foreign_config() {
    let cfg = clean_fixture();
    let (_, snap) = run_and_capture(&cfg);
    // A different seed is a different base config, not a horizon change.
    let mut other = cfg.clone();
    other.seed = 999;
    assert!(matches!(
        resume(&snap, &other),
        Err(ResumeError::ConfigMismatch { .. })
    ));
}

#[test]
fn resume_rejects_a_truncated_model() {
    let cfg = clean_fixture();
    let (_, mut snap) = run_and_capture(&cfg);
    snap.model.truncate(snap.model.len() / 2);
    assert!(matches!(
        resume(&snap, &cfg),
        Err(ResumeError::Corrupt { .. })
    ));
}

/// `resume_with` seeds the snapshot's metric accumulators into a fresh
/// registry: the resumed manifest's metric rows equal the straight
/// run's, not just the model/accounting fields.
#[test]
fn resumed_metrics_match_straight_through() {
    let cfg = armed_fixture();
    let (straight_json, snap) = run_and_capture(&cfg);
    let (telem, _rec) = Telemetry::recording();
    let run = resume_with(&snap, &cfg, &telem).expect("resume must be accepted");
    assert_eq!(straight_json, run.manifest.to_json());
}
