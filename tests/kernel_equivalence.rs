//! Differential kernel-equivalence suite — the hot-path overhaul's
//! safety net. Every optimized kernel (blocked/tiled pairwise
//! distances, fused axpy/mean reductions, work-stealing parallel
//! aggregation paths) is pinned **byte-identical** to a retained naive
//! reference over random shapes, thread counts ∈ {1, 2, 4, 8}, and
//! adversarial values (NaN, ±∞, subnormals, signed zeros).
//!
//! "Byte-identical" is literal. f64 distances compare on `to_bits`
//! even for NaN: `dist_sq`/`dist_sq_block` canonicalize any NaN
//! accumulator to the positive quiet NaN, so payloads match exactly.
//! f32 mean kernels compare exact bits for non-NaN and accept
//! any-NaN-vs-any-NaN (the fused and naive summation trees can reach
//! differently-signed NaN payloads through `inf − inf`, which no
//! downstream consumer distinguishes).
//!
//! Thread-count invariance is the work-stealing determinism contract
//! (DESIGN.md §15): stealing only moves *which worker* computes a
//! chunk, never what is computed or where it lands.

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use abd_hfl::robust::geomed::GeoMed;
use abd_hfl::robust::krum::{self, reference as krum_reference};
use abd_hfl::robust::{median, trimmed_mean, AggScratch};
use abd_hfl::tensor::ops::{self, reference};
use abd_hfl::tensor::stats;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bits_eq_f32(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Full adversarial value domain, NaN included.
fn adversarial_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -100.0f32..100.0,
        -1.0e30f32..1.0e30,
        Just(0.0f32),
        Just(-0.0f32),
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(1.0e-40f32),
        Just(-4.7e-42f32),
        Just(f32::MIN_POSITIVE),
    ]
}

/// Adversarial minus NaN, for kernels whose sort comparators reject
/// unordered values by contract (`median_in_place`,
/// `trimmed_mean_in_place`).
fn ordered_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -100.0f32..100.0,
        -1.0e30f32..1.0e30,
        Just(0.0f32),
        Just(-0.0f32),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(1.0e-40f32),
        Just(-4.7e-42f32),
    ]
}

/// `n` rows of dimension `d`, both random, values from `elem`.
fn rows_of(
    elem: fn() -> BoxedStrategy<f32>,
    max_n: usize,
    max_d: usize,
) -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..=max_n, 1usize..=max_d).prop_flat_map(move |(n, d)| pvec(pvec(elem(), d), n))
}

fn adv_elem() -> BoxedStrategy<f32> {
    adversarial_f32().boxed()
}

fn ord_elem() -> BoxedStrategy<f32> {
    ordered_f32().boxed()
}

fn as_refs(rows: &[Vec<f32>]) -> Vec<&[f32]> {
    rows.iter().map(|r| r.as_slice()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Tiled distance rows == one naive `dist_sq` per row, exact f64
    /// bits (NaN canonicalization makes even NaN payloads equal).
    #[test]
    fn dist_sq_block_matches_naive(rows in rows_of(adv_elem, 12, 48), a in pvec(adversarial_f32(), 48)) {
        let d = rows[0].len();
        let a = &a[..d];
        let refs = as_refs(&rows);
        let mut blocked = vec![0.0f64; refs.len()];
        let mut naive = vec![0.0f64; refs.len()];
        ops::dist_sq_block(a, &refs, &mut blocked);
        reference::dist_sq_rows_naive(a, &refs, &mut naive);
        for (i, (b, n)) in blocked.iter().zip(&naive).enumerate() {
            prop_assert_eq!(
                b.to_bits(), n.to_bits(),
                "row {}: blocked {} vs naive {}", i, b, n
            );
        }
    }

    /// Krum scoring through the blocked upper-triangle matrix, at every
    /// thread count, == the retained pre-overhaul full-matrix scorer.
    #[test]
    fn krum_scores_match_naive_at_all_thread_counts(
        rows in rows_of(adv_elem, 12, 32),
        f in 0usize..4,
    ) {
        let refs = as_refs(&rows);
        let naive = krum_reference::krum_scores_naive(&refs, f, 1);
        for &t in &THREADS {
            let fast = krum::krum_scores_with_threads(&refs, f, t);
            prop_assert_eq!(fast.len(), naive.len());
            for (i, (a, b)) in fast.iter().zip(&naive).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "score {} at {} threads: {} vs naive {}", i, t, a, b
                );
            }
        }
    }

    /// Fused single-pass mean == zero/add/scale naive mean.
    #[test]
    fn mean_of_matches_naive(rows in rows_of(adv_elem, 12, 48)) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let mut fused = vec![0.0f32; d];
        let mut naive = vec![0.0f32; d];
        ops::mean_of(&refs, &mut fused);
        reference::mean_of_naive(&refs, &mut naive);
        for (i, (a, b)) in fused.iter().zip(&naive).enumerate() {
            prop_assert!(bits_eq_f32(*a, *b), "coord {}: fused {} vs naive {}", i, a, b);
        }
    }

    /// Fused weighted mean == per-row axpy naive weighted mean.
    #[test]
    fn weighted_mean_of_matches_naive(
        rows in rows_of(adv_elem, 12, 48),
        raw_w in pvec(0.01f32..10.0, 12),
    ) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let w = &raw_w[..refs.len()];
        let mut fused = vec![0.0f32; d];
        let mut naive = vec![0.0f32; d];
        ops::weighted_mean_of(&refs, w, &mut fused);
        reference::weighted_mean_of_naive(&refs, w, &mut naive);
        for (i, (a, b)) in fused.iter().zip(&naive).enumerate() {
            prop_assert!(bits_eq_f32(*a, *b), "coord {}: fused {} vs naive {}", i, a, b);
        }
    }

    /// Indexed (gather) mean == naive mean over the gathered subset.
    #[test]
    fn mean_of_indexed_matches_naive_on_subset(
        rows in rows_of(adv_elem, 12, 48),
        picks in pvec(0usize..12, 1..12),
    ) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let idx: Vec<usize> = picks.iter().map(|p| p % refs.len()).collect();
        let subset: Vec<&[f32]> = idx.iter().map(|&i| refs[i]).collect();
        let mut fused = vec![0.0f32; d];
        let mut naive = vec![0.0f32; d];
        ops::mean_of_indexed(&refs, &idx, &mut fused);
        reference::mean_of_naive(&subset, &mut naive);
        for (i, (a, b)) in fused.iter().zip(&naive).enumerate() {
            prop_assert!(bits_eq_f32(*a, *b), "coord {}: indexed {} vs naive {}", i, a, b);
        }
    }

    /// Fused multi-row axpy == one scalar axpy per row.
    #[test]
    fn axpy_rows_matches_per_row_axpy(
        rows in rows_of(adv_elem, 12, 48),
        raw_w in pvec(-10.0f32..10.0, 12),
    ) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let w = &raw_w[..refs.len()];
        let mut fused = vec![0.0f32; d];
        let mut naive = vec![0.0f32; d];
        ops::axpy_rows(w, &refs, &mut fused);
        for (r, &wi) in refs.iter().zip(w) {
            ops::axpy(wi, r, &mut naive);
        }
        for (i, (a, b)) in fused.iter().zip(&naive).enumerate() {
            prop_assert!(bits_eq_f32(*a, *b), "coord {}: fused {} vs naive {}", i, a, b);
        }
    }

    /// Work-stealing coordinate median, at every thread count, == the
    /// sequential per-coordinate kernel.
    #[test]
    fn coordinate_median_parallel_matches_sequential(rows in rows_of(ord_elem, 9, 40)) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let mut seq = vec![0.0f32; d];
        stats::coordinate_median(&refs, &mut seq);
        for &t in &THREADS {
            let mut par = vec![0.0f32; d];
            median::coordinate_median_parallel(&refs, &mut par, t);
            for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                prop_assert!(
                    bits_eq_f32(*a, *b),
                    "coord {} at {} threads: {} vs sequential {}", i, t, a, b
                );
            }
        }
    }

    /// Work-stealing coordinate trimmed mean, at every thread count, ==
    /// the sequential per-coordinate kernel.
    #[test]
    fn coordinate_trimmed_mean_parallel_matches_sequential(
        rows in rows_of(ord_elem, 9, 40),
        trim_pick in 0usize..4,
    ) {
        let d = rows[0].len();
        let refs = as_refs(&rows);
        let trim = trim_pick.min((refs.len() - 1) / 2);
        let mut seq = vec![0.0f32; d];
        stats::coordinate_trimmed_mean(&refs, trim, &mut seq);
        for &t in &THREADS {
            let mut par = vec![0.0f32; d];
            trimmed_mean::coordinate_trimmed_mean_parallel(&refs, trim, &mut par, t);
            for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                prop_assert!(
                    bits_eq_f32(*a, *b),
                    "coord {} at {} threads (trim {}): {} vs sequential {}", i, t, trim, a, b
                );
            }
        }
    }

    /// The Weiszfeld loop's work-stealing distance fill at every thread
    /// count == its single-threaded run, iteration count included.
    #[test]
    fn geomed_identical_at_all_thread_counts(rows in rows_of(adv_elem, 9, 32)) {
        let refs = as_refs(&rows);
        let gm = GeoMed::default();
        let mut base = Vec::new();
        let base_iters = gm.compute_into(&refs, 1, &mut base, &mut AggScratch::default());
        for &t in &THREADS[1..] {
            let mut est = Vec::new();
            let iters = gm.compute_into(&refs, t, &mut est, &mut AggScratch::default());
            prop_assert_eq!(iters, base_iters, "iteration count diverged at {} threads", t);
            for (i, (a, b)) in est.iter().zip(&base).enumerate() {
                prop_assert!(
                    bits_eq_f32(*a, *b),
                    "coord {} at {} threads: {} vs single-threaded {}", i, t, a, b
                );
            }
        }
    }
}
