//! Fault-tolerance integration tests: the full stack under injected
//! crashes, leader kills and partitions (ISSUE acceptance criteria for
//! the `hfl-faults` subsystem).

use abd_hfl::attacks::{ModelAttack, Placement};
use abd_hfl::core::config::{AttackCfg, HflConfig, LevelAgg, SamplingCfg};
use abd_hfl::core::engine::cost::clean_round_messages;
use abd_hfl::core::run::RunOptions;
use abd_hfl::core::runner::{run_prepared_with, Experiment};
use abd_hfl::faults::FaultPlan;
use abd_hfl::robust::{AggregatorKind, SuspicionConfig};
use abd_hfl::telemetry::Telemetry;

fn run_abd_hfl_with(
    cfg: &abd_hfl::core::HflConfig,
    telem: &Telemetry,
) -> abd_hfl::core::InstrumentedRun {
    RunOptions::new().telemetry(telem).run(cfg).into_sync()
}

fn fast(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.rounds = 25;
    cfg.eval_every = 25;
    cfg
}

/// Crash-stops the first `count` followers of every bottom cluster at
/// `round`.
fn crash_followers(mut plan: FaultPlan, cfg: &HflConfig, round: usize, count: usize) -> FaultPlan {
    let h = cfg.topology.build(cfg.seed);
    for cluster in &h.level(h.bottom_level()).clusters {
        for &m in cluster.members.iter().skip(1).take(count) {
            plan = plan.crash_stop(round, m);
        }
    }
    plan
}

#[test]
fn f_follower_crashes_cost_little_accuracy() {
    // The ISSUE acceptance criterion: one leader killed plus ≤ f = 1
    // followers crashed per cluster at round 5 completes, with accuracy
    // within 2 points of the fault-free run.
    let clean_cfg = fast(201);
    let clean = run_abd_hfl_with(&clean_cfg, &Telemetry::disabled());

    let mut cfg = fast(201);
    let h = cfg.topology.build(cfg.seed);
    let plan = crash_followers(
        FaultPlan::new().kill_leader(5, h.bottom_level(), 1, None),
        &cfg,
        5,
        1,
    );
    cfg.faults = Some(plan);
    let faulted = run_abd_hfl_with(&cfg, &Telemetry::disabled());

    assert!(
        faulted.result.faulted_total > 0,
        "crashes must cost bottom-level updates"
    );
    assert!(
        (clean.result.final_accuracy - faulted.result.final_accuracy).abs() < 0.02,
        "accuracy degraded beyond 2 points: clean {} vs faulted {}",
        clean.result.final_accuracy,
        faulted.result.final_accuracy
    );
    // Every scheduled fault and every recovery action is in the manifest.
    assert!(
        faulted
            .manifest
            .faults
            .iter()
            .any(|f| f.kind == "crash_stop"),
        "scheduled crashes missing from the manifest fault log"
    );
    assert!(
        faulted
            .manifest
            .faults
            .iter()
            .any(|f| f.kind == "degraded_quorum"),
        "degraded-quorum recovery missing from the manifest fault log"
    );
}

#[test]
fn leader_kill_promotes_a_deputy_and_terminates() {
    let mut cfg = fast(202);
    let h = cfg.topology.build(cfg.seed);
    // Kill bottom cluster 2's leader for good at round 3.
    cfg.faults = Some(FaultPlan::new().kill_leader(3, h.bottom_level(), 2, None));
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    let failovers: Vec<_> = run
        .manifest
        .faults
        .iter()
        .filter(|f| f.kind == "leader_failover")
        .collect();
    assert!(
        !failovers.is_empty(),
        "killing a leader must record deputy promotions; log: {:?}",
        run.manifest.faults
    );
    // Failover persists: the deputy collects every round after the kill.
    assert!(
        failovers.len() >= cfg.rounds - 3,
        "expected a promotion per post-kill round, got {}",
        failovers.len()
    );
    // The run still learns (one cluster degraded out of 16).
    assert!(
        run.result.final_accuracy > 0.7,
        "leader kill wrecked the run: {}",
        run.result.final_accuracy
    );
}

#[test]
fn healed_partition_converges() {
    let mut cfg = fast(203);
    // Rounds 4–8: bottom cluster 1's followers (devices 17–19) are cut
    // off from everyone else, then the partition heals.
    cfg.faults = Some(FaultPlan::new().partition(4, vec![vec![17, 18, 19]], 8));
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert!(
        run.result.faulted_total > 0,
        "partition should cost updates while active"
    );
    assert!(
        run.manifest.faults.iter().any(|f| f.kind == "partition"),
        "partition activation missing from the fault log"
    );
    assert!(
        run.manifest
            .faults
            .iter()
            .any(|f| f.kind == "partition_heal"),
        "partition heal missing from the fault log"
    );
    assert!(
        run.result.final_accuracy > 0.75,
        "run did not converge after the partition healed: {}",
        run.result.final_accuracy
    );
}

#[test]
fn same_seed_fault_runs_have_byte_identical_manifests() {
    let build = || {
        let mut cfg = fast(204);
        let h = cfg.topology.build(cfg.seed);
        cfg.faults = Some(crash_followers(
            FaultPlan::new()
                .kill_leader(5, h.bottom_level(), 1, Some(15))
                .loss_burst(8, 0.2, 11)
                .straggler(2, 30, 4.0, Some(20)),
            &cfg,
            5,
            1,
        ));
        cfg
    };
    let a = run_abd_hfl_with(&build(), &Telemetry::disabled());
    let b = run_abd_hfl_with(&build(), &Telemetry::disabled());
    assert_eq!(
        a.manifest.to_json(),
        b.manifest.to_json(),
        "identical seeds must give byte-identical manifests under faults"
    );
    assert!(
        !a.manifest.faults.is_empty(),
        "fault log should not be empty in this scenario"
    );
}

#[test]
fn recovering_crash_rejoins() {
    let mut cfg = fast(205);
    // Devices 33 and 34 crash at round 3 and recover at round 10.
    cfg.faults = Some(
        FaultPlan::new()
            .crash_recover(3, 33, 10)
            .crash_recover(3, 34, 10),
    );
    let exp = Experiment::try_prepare(&cfg).expect("valid config");
    let inj = exp.injector().expect("injector compiled");
    assert!(inj.crashed(33, 5));
    assert!(!inj.crashed(33, 10));
    let run = run_prepared_with(&exp, &Telemetry::disabled());
    // 2 devices × 7 rounds of downtime.
    assert_eq!(run.result.faulted_total, 14);
    assert!(
        run.manifest
            .faults
            .iter()
            .any(|f| f.kind == "crash_recover"),
        "recovery missing from the fault log"
    );
    assert!(run.result.final_accuracy > 0.75);
}

// ---- cross-device sampling × fault/churn/suspicion composition ------
// (DESIGN.md §14: absence, quarantine and sampling must compose; a
// sampled-out client is simply not there — never charged, never struck.)

#[test]
fn identity_sampling_is_byte_identical_to_no_sampling() {
    // An m-of-m draw binds slot i to client i under both schemes, so
    // turning sampling on without a larger population must not perturb
    // a single stream — training, churn, eval or accounting.
    let run = |sampling: Option<SamplingCfg>| {
        let mut cfg = fast(206);
        cfg.sampling = sampling;
        let mut m = run_abd_hfl_with(&cfg, &Telemetry::disabled()).manifest;
        // The config hash legitimately differs (the sampling key is in
        // the hashed Debug rendering); everything the run *did* must not.
        m.config_hash = String::new();
        m.to_json()
    };
    let baseline = run(None);
    assert_eq!(
        baseline,
        run(Some(SamplingCfg::uniform(64, 64))),
        "uniform 64-of-64 sampling must match the unsampled run byte for byte"
    );
    assert_eq!(
        baseline,
        run(Some(SamplingCfg::stratified(64, 64))),
        "stratified 64-of-64 sampling must match the unsampled run byte for byte"
    );
}

#[test]
fn sampled_out_clients_are_never_charged_messages() {
    // 1024 clients, 64 sampled per round: the message ledger must stay
    // exactly the cohort topology's closed form every round — the other
    // 960 clients are not throttled or skipped, they simply do not
    // exist on the wire.
    let mut cfg = fast(207);
    cfg.levels = vec![LevelAgg::Bra(AggregatorKind::FedAvg); 3];
    cfg.sampling = Some(SamplingCfg::uniform(1024, 64));
    let exp = Experiment::try_prepare(&cfg).expect("valid sampled config");
    let expected = clean_round_messages(&cfg, &exp.hierarchy)
        .expect("an all-BRA stack has a closed-form message count");
    let run = run_prepared_with(&exp, &Telemetry::disabled());
    for r in &run.manifest.rounds {
        assert_eq!(
            r.messages, expected,
            "round {}: message count depends on the population, not the cohort",
            r.round
        );
    }
    assert_eq!(run.manifest.totals.messages, expected * cfg.rounds as u64);
}

#[test]
fn suspicion_strikes_only_sampled_cohort_members() {
    // A sign-flipping coalition of every 8th client in a 128-client
    // population, half sampled each round — the sorted cohort maps ~8
    // consecutive global ids onto each 4-slot cluster, so the spacing
    // keeps clusters near the f = 1 the aggregator assumes. Strike
    // evidence only exists for clients that aggregated this round, so
    // every quarantine (and any equivocation conviction) must name a
    // member of that round's cohort — and scores are identity-bound,
    // so the quarantines track the coalition across re-sampled cohorts.
    let mut cfg = fast(208);
    cfg.attack = AttackCfg::Model {
        attack: ModelAttack::SignFlip { scale: 10.0 },
        proportion: 0.125,
        placement: Placement::Prefix,
    };
    cfg.malicious_override = Some((0..128).map(|c| c % 8 == 1).collect());
    let mk = AggregatorKind::MultiKrum { f: 1, m: 3 };
    cfg.levels = vec![
        LevelAgg::Bra(mk.clone()),
        LevelAgg::Bra(mk.clone()),
        LevelAgg::Bra(mk),
    ];
    // Sampled clients are only present (and thus only strikeable) about
    // half the rounds, so a slower decay than the always-present
    // arms-race setting is needed for intermittent strikes to accumulate.
    cfg.suspicion = Some(SuspicionConfig {
        decay: 0.95,
        quarantine_threshold: 3.0,
        release_threshold: 0.8,
    });
    cfg.sampling = Some(SamplingCfg::uniform(128, 64));
    let exp = Experiment::try_prepare(&cfg).expect("valid sampled config");
    let run = run_prepared_with(&exp, &Telemetry::disabled());
    assert!(
        run.result.quarantined_total > 0,
        "the coalition must lose client-rounds to quarantine"
    );
    let suspicion = run
        .manifest
        .suspicion
        .as_ref()
        .expect("suspicion section must be in the manifest when the layer runs");
    let strikes: Vec<_> = suspicion
        .events
        .iter()
        .filter(|e| e.kind == "quarantined" || e.kind == "equivocation")
        .collect();
    assert!(!strikes.is_empty(), "the attack must produce quarantines");
    for e in &strikes {
        let cohort = exp.cohort(e.round);
        assert!(
            cohort.binary_search(&e.client).is_ok(),
            "round {}: client {} was {} without being in the sampled cohort {:?}",
            e.round,
            e.client,
            e.kind,
            cohort
        );
    }
    // Unlike the fixed-placement arms-race test, per-round sampling can
    // hand a cluster a malicious majority, making its honest outlier
    // collect strikes — so demand the coalition dominates the
    // quarantine log rather than owning it outright.
    let (malicious, honest): (Vec<usize>, Vec<usize>) = suspicion
        .events
        .iter()
        .filter(|e| e.kind == "quarantined")
        .map(|e| e.client)
        .partition(|&c| exp.malicious[c]);
    assert!(
        malicious.len() > honest.len(),
        "quarantines must concentrate on the coalition: malicious {malicious:?} vs honest {honest:?}"
    );
}

#[test]
fn churn_absence_is_bounded_by_the_cohort_not_the_population() {
    // Churn rolls once per bound cohort slot, so even with a population
    // four times the cohort no round can lose more clients than it
    // sampled.
    let mut cfg = fast(209);
    cfg.sampling = Some(SamplingCfg::uniform(256, 64));
    cfg.churn_leave_prob = 0.2;
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert!(
        run.manifest.totals.absent > 0,
        "20% churn over 25 rounds must register absences"
    );
    for r in &run.manifest.rounds {
        assert!(
            r.absent <= 64,
            "round {}: {} absences exceed the 64-slot cohort",
            r.round,
            r.absent
        );
    }
    assert!(run.result.final_accuracy.is_finite());
}
