//! Fault-tolerance integration tests: the full stack under injected
//! crashes, leader kills and partitions (ISSUE acceptance criteria for
//! the `hfl-faults` subsystem).

use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::run::RunOptions;
use abd_hfl::core::runner::{run_prepared_with, Experiment};
use abd_hfl::faults::FaultPlan;
use abd_hfl::telemetry::Telemetry;

fn run_abd_hfl_with(
    cfg: &abd_hfl::core::HflConfig,
    telem: &Telemetry,
) -> abd_hfl::core::InstrumentedRun {
    RunOptions::new().telemetry(telem).run(cfg).into_sync()
}

fn fast(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.rounds = 25;
    cfg.eval_every = 25;
    cfg
}

/// Crash-stops the first `count` followers of every bottom cluster at
/// `round`.
fn crash_followers(mut plan: FaultPlan, cfg: &HflConfig, round: usize, count: usize) -> FaultPlan {
    let h = cfg.topology.build(cfg.seed);
    for cluster in &h.level(h.bottom_level()).clusters {
        for &m in cluster.members.iter().skip(1).take(count) {
            plan = plan.crash_stop(round, m);
        }
    }
    plan
}

#[test]
fn f_follower_crashes_cost_little_accuracy() {
    // The ISSUE acceptance criterion: one leader killed plus ≤ f = 1
    // followers crashed per cluster at round 5 completes, with accuracy
    // within 2 points of the fault-free run.
    let clean_cfg = fast(201);
    let clean = run_abd_hfl_with(&clean_cfg, &Telemetry::disabled());

    let mut cfg = fast(201);
    let h = cfg.topology.build(cfg.seed);
    let plan = crash_followers(
        FaultPlan::new().kill_leader(5, h.bottom_level(), 1, None),
        &cfg,
        5,
        1,
    );
    cfg.faults = Some(plan);
    let faulted = run_abd_hfl_with(&cfg, &Telemetry::disabled());

    assert!(
        faulted.result.faulted_total > 0,
        "crashes must cost bottom-level updates"
    );
    assert!(
        (clean.result.final_accuracy - faulted.result.final_accuracy).abs() < 0.02,
        "accuracy degraded beyond 2 points: clean {} vs faulted {}",
        clean.result.final_accuracy,
        faulted.result.final_accuracy
    );
    // Every scheduled fault and every recovery action is in the manifest.
    assert!(
        faulted
            .manifest
            .faults
            .iter()
            .any(|f| f.kind == "crash_stop"),
        "scheduled crashes missing from the manifest fault log"
    );
    assert!(
        faulted
            .manifest
            .faults
            .iter()
            .any(|f| f.kind == "degraded_quorum"),
        "degraded-quorum recovery missing from the manifest fault log"
    );
}

#[test]
fn leader_kill_promotes_a_deputy_and_terminates() {
    let mut cfg = fast(202);
    let h = cfg.topology.build(cfg.seed);
    // Kill bottom cluster 2's leader for good at round 3.
    cfg.faults = Some(FaultPlan::new().kill_leader(3, h.bottom_level(), 2, None));
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    let failovers: Vec<_> = run
        .manifest
        .faults
        .iter()
        .filter(|f| f.kind == "leader_failover")
        .collect();
    assert!(
        !failovers.is_empty(),
        "killing a leader must record deputy promotions; log: {:?}",
        run.manifest.faults
    );
    // Failover persists: the deputy collects every round after the kill.
    assert!(
        failovers.len() >= cfg.rounds - 3,
        "expected a promotion per post-kill round, got {}",
        failovers.len()
    );
    // The run still learns (one cluster degraded out of 16).
    assert!(
        run.result.final_accuracy > 0.7,
        "leader kill wrecked the run: {}",
        run.result.final_accuracy
    );
}

#[test]
fn healed_partition_converges() {
    let mut cfg = fast(203);
    // Rounds 4–8: bottom cluster 1's followers (devices 17–19) are cut
    // off from everyone else, then the partition heals.
    cfg.faults = Some(FaultPlan::new().partition(4, vec![vec![17, 18, 19]], 8));
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert!(
        run.result.faulted_total > 0,
        "partition should cost updates while active"
    );
    assert!(
        run.manifest.faults.iter().any(|f| f.kind == "partition"),
        "partition activation missing from the fault log"
    );
    assert!(
        run.manifest
            .faults
            .iter()
            .any(|f| f.kind == "partition_heal"),
        "partition heal missing from the fault log"
    );
    assert!(
        run.result.final_accuracy > 0.75,
        "run did not converge after the partition healed: {}",
        run.result.final_accuracy
    );
}

#[test]
fn same_seed_fault_runs_have_byte_identical_manifests() {
    let build = || {
        let mut cfg = fast(204);
        let h = cfg.topology.build(cfg.seed);
        cfg.faults = Some(crash_followers(
            FaultPlan::new()
                .kill_leader(5, h.bottom_level(), 1, Some(15))
                .loss_burst(8, 0.2, 11)
                .straggler(2, 30, 4.0, Some(20)),
            &cfg,
            5,
            1,
        ));
        cfg
    };
    let a = run_abd_hfl_with(&build(), &Telemetry::disabled());
    let b = run_abd_hfl_with(&build(), &Telemetry::disabled());
    assert_eq!(
        a.manifest.to_json(),
        b.manifest.to_json(),
        "identical seeds must give byte-identical manifests under faults"
    );
    assert!(
        !a.manifest.faults.is_empty(),
        "fault log should not be empty in this scenario"
    );
}

#[test]
fn recovering_crash_rejoins() {
    let mut cfg = fast(205);
    // Devices 33 and 34 crash at round 3 and recover at round 10.
    cfg.faults = Some(
        FaultPlan::new()
            .crash_recover(3, 33, 10)
            .crash_recover(3, 34, 10),
    );
    let exp = Experiment::try_prepare(&cfg).expect("valid config");
    let inj = exp.injector().expect("injector compiled");
    assert!(inj.crashed(33, 5));
    assert!(!inj.crashed(33, 10));
    let run = run_prepared_with(&exp, &Telemetry::disabled());
    // 2 devices × 7 rounds of downtime.
    assert_eq!(run.result.faulted_total, 14);
    assert!(
        run.manifest
            .faults
            .iter()
            .any(|f| f.kind == "crash_recover"),
        "recovery missing from the fault log"
    );
    assert!(run.result.final_accuracy > 0.75);
}
