//! Golden-manifest regression tests for the round engine.
//!
//! Each fixture freezes one aggregation mode as it behaved before the
//! `RoundEngine` refactor collapsed the three textually-separate round
//! paths (clean / faulted / armed): the committed files under
//! `tests/golden/` hold the manifest JSON and the structured-event
//! stream of a small same-seed run, and the test asserts the engine
//! still reproduces them **byte-identically** — same RNG stream order,
//! same cost accounting, same event sequence.
//!
//! Regenerate (after an *intentional* change to round semantics) with:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test --test golden_manifests
//! ```
//!
//! The fixtures are a function of the `rand` implementation the
//! workspace was built against (seeded streams feed SGD, shuffles and
//! consensus votes). Each fixture's goldens carry the stream identity
//! they were generated under — `<name>.fingerprint.txt` per fixture,
//! with the legacy shared `rng_fingerprint.txt` as the fallback for the
//! original four; when a fixture's recorded build differs from the
//! current one its byte-comparison is skipped (two in-process runs are
//! still compared, so determinism itself stays asserted).

use std::fs;
use std::path::{Path, PathBuf};

use abd_hfl::attacks::{AdaptiveAttack, ModelAttack, Placement, ProtocolAttack};
use abd_hfl::core::config::{AsyncRoundCfg, AttackCfg, HflConfig, LevelAgg, SamplingCfg};
use abd_hfl::core::runner::{run_prepared_with, Experiment, InstrumentedRun};
use abd_hfl::faults::FaultPlan;
use abd_hfl::ml::synth::SynthConfig;
use abd_hfl::robust::SuspicionConfig;
use abd_hfl::simnet::DelayModel;
use abd_hfl::telemetry::Telemetry;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Identity of the seeded RNG streams this build produces: a few draws
/// from the two generator entry points the runner uses. Distinct `rand`
/// implementations (or versions) yield a different line.
fn rng_fingerprint() -> String {
    use rand::RngCore;
    let mut a = abd_hfl::ml::rng::rng_for_n(0xF00D, &[1, 2, 3]);
    let mut b: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0xBEEF);
    format!(
        "{:016x}-{:016x}-{:016x}",
        a.next_u64(),
        b.next_u64(),
        abd_hfl::ml::rng::derive_seed(7, 0x42)
    )
}

/// The fingerprint `name`'s committed goldens were generated under: a
/// per-fixture `<name>.fingerprint.txt` when present (fixtures promoted
/// to golden coverage after the original four), falling back to the
/// shared legacy `rng_fingerprint.txt`. Per-fixture records let goldens
/// generated under different `rand` builds coexist — each fixture's
/// byte-comparison arms exactly where its own generator build runs.
fn recorded_fingerprint(name: &str) -> Option<String> {
    let dir = golden_dir();
    let per_fixture = dir.join(format!("{name}.fingerprint.txt"));
    let path = if per_fixture.exists() {
        per_fixture
    } else {
        dir.join("rng_fingerprint.txt")
    };
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

/// True when `name`'s committed goldens were generated under this
/// build's RNG streams (always true in update mode, which rewrites
/// them).
fn fingerprint_matches(name: &str) -> bool {
    recorded_fingerprint(name).as_deref() == Some(&rng_fingerprint())
}

fn update_mode() -> bool {
    std::env::var_os("GOLDEN_UPDATE").is_some()
}

/// The shared small task every fixture runs (quick config, smaller
/// synthetic task so four fixtures stay cheap).
fn base(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 4;
    cfg.eval_every = 2;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    cfg
}

/// The fault-free path: churn and a sub-unit quorum exercised.
fn clean_fixture() -> HflConfig {
    let mut cfg = base(AttackCfg::None, 2024);
    cfg.quorum = 0.75;
    cfg.churn_leave_prob = 0.1;
    cfg
}

/// The fault-injected path: a follower crash, a leader kill (deputy
/// promotion), a healing partition and a straggler, under φ = 0.75.
fn faulted_fixture() -> HflConfig {
    let mut cfg = base(AttackCfg::None, 2025);
    cfg.quorum = 0.75;
    let split: Vec<usize> = (0..24).collect();
    let rest: Vec<usize> = (24..64).collect();
    cfg.faults = Some(
        FaultPlan::new()
            .crash_stop(1, 2)
            .kill_leader(1, 2, 1, None)
            .partition(2, vec![split, rest], 3)
            .straggler(1, 6, 8.0, None),
    );
    cfg
}

/// The arms-race path: adaptive ALIE coalition, suspicion/quarantine
/// defense, equivocating leaders audited by echo digests.
fn armed_fixture() -> HflConfig {
    let mut cfg = base(
        AttackCfg::Adaptive {
            attack: AdaptiveAttack::alie_default(),
            proportion: 0.25,
            placement: Placement::Prefix,
        },
        2026,
    );
    cfg.suspicion = Some(SuspicionConfig::default());
    cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
    cfg
}

/// Arms race, CBA-at-the-bottom variant: a static sign-flip coalition
/// withholding pivotally below full quorum, consensus exclusions
/// feeding the suspicion strikes.
fn withhold_fixture() -> HflConfig {
    let mut cfg = base(
        AttackCfg::Model {
            attack: ModelAttack::SignFlip { scale: 2.0 },
            proportion: 0.25,
            placement: Placement::Random,
        },
        2027,
    );
    cfg.quorum = 0.75;
    cfg.levels[2] = LevelAgg::Cba(abd_hfl::consensus::ConsensusKind::VoteMajority);
    cfg.suspicion = Some(SuspicionConfig::default());
    cfg.protocol_attack = Some(ProtocolAttack::Withhold);
    cfg
}

/// The deadline-driven path promoted to golden coverage: link delays
/// straddling the buffer deadline under φ = 0.75, so deadline closes,
/// discounted late admissions and lateness bookkeeping all land in the
/// frozen stream.
fn async_fixture() -> HflConfig {
    let mut cfg = base(AttackCfg::None, 2028);
    cfg.quorum = 0.75;
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us: 3_000,
        staleness_bound_us: 2_000,
        link_delay: DelayModel::Uniform { lo: 500, hi: 5_000 },
        tier_deadlines: Vec::new(),
    });
    cfg
}

/// The cross-device path promoted to golden coverage: a 64-slot cohort
/// sampled uniformly from a 128-client population each round, with an
/// identity-bound sign-flip coalition so the malicious mask exercises
/// the cohort→global mapping.
fn sampled_fixture() -> HflConfig {
    let mut cfg = base(
        AttackCfg::Model {
            attack: ModelAttack::SignFlip { scale: 2.0 },
            proportion: 0.25,
            placement: Placement::Random,
        },
        2029,
    );
    cfg.quorum = 0.75;
    cfg.sampling = Some(SamplingCfg::uniform(128, 64));
    cfg
}

/// Runs a fixture with a recording telemetry bundle, returning the run
/// plus the rendered event stream (one debug-formatted event per line).
fn run_fixture(cfg: &HflConfig) -> (InstrumentedRun, String) {
    let exp = Experiment::prepare(cfg);
    let (telem, rec) = Telemetry::recording();
    let run = run_prepared_with(&exp, &telem);
    let events: String = rec.events().iter().map(|e| format!("{e:?}\n")).collect();
    (run, events)
}

fn check_golden(name: &str, cfg: &HflConfig) {
    let (run, events) = run_fixture(cfg);
    let manifest = run.manifest.to_json();

    // Determinism holds regardless of which rand build is linked: a
    // second in-process run must agree byte-for-byte.
    let (rerun, reevents) = run_fixture(cfg);
    assert_eq!(
        manifest,
        rerun.manifest.to_json(),
        "{name}: same-seed manifests differ within one build"
    );
    assert_eq!(
        events, reevents,
        "{name}: same-seed event streams differ within one build"
    );

    let dir = golden_dir();
    let manifest_path = dir.join(format!("{name}.manifest.json"));
    let events_path = dir.join(format!("{name}.events.txt"));
    if update_mode() {
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(format!("{name}.fingerprint.txt")),
            rng_fingerprint() + "\n",
        )
        .unwrap();
        fs::write(&manifest_path, manifest + "\n").unwrap();
        fs::write(&events_path, events).unwrap();
        return;
    }
    if !fingerprint_matches(name) {
        eprintln!(
            "{name}: goldens were generated under a different rand build \
             (rng fingerprint mismatch); skipping the byte comparison"
        );
        return;
    }
    let want_manifest = fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("{name}: missing golden manifest ({e}); run GOLDEN_UPDATE=1"));
    let want_events = fs::read_to_string(&events_path)
        .unwrap_or_else(|e| panic!("{name}: missing golden events ({e}); run GOLDEN_UPDATE=1"));
    assert_eq!(
        manifest,
        want_manifest.trim_end_matches('\n'),
        "{name}: manifest diverged from the pre-refactor golden"
    );
    assert_eq!(
        events, want_events,
        "{name}: event stream diverged from the pre-refactor golden"
    );
}

#[test]
fn clean_round_path_matches_golden() {
    check_golden("clean", &clean_fixture());
}

#[test]
fn faulted_round_path_matches_golden() {
    check_golden("faulted", &faulted_fixture());
}

#[test]
fn armed_round_path_matches_golden() {
    check_golden("armed", &armed_fixture());
}

#[test]
fn withholding_round_path_matches_golden() {
    check_golden("withhold", &withhold_fixture());
}

#[test]
fn async_round_path_matches_golden() {
    check_golden("async", &async_fixture());
}

#[test]
fn sampled_round_path_matches_golden() {
    check_golden("sampled", &sampled_fixture());
}
