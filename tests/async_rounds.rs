//! Deadline-driven asynchronous round integration tests (DESIGN.md
//! §12): quorum-vs-deadline close boundaries, bounded-staleness
//! admission, straggler-forced deadline closes without loss of
//! liveness, staleness-attack containment, and same-seed determinism
//! of the whole async path across the clean / faulted / armed fixture
//! classes.

use abd_hfl::attacks::{AdaptiveAttack, Placement, ProtocolAttack};
use abd_hfl::core::config::{AsyncRoundCfg, AttackCfg, HflConfig};
use abd_hfl::core::runner::{
    resume_prepared_with, run_prepared_snapshotting, run_prepared_with, Experiment, InstrumentedRun,
};
use abd_hfl::faults::FaultPlan;
use abd_hfl::ml::synth::SynthConfig;
use abd_hfl::robust::SuspicionConfig;
use abd_hfl::simnet::DelayModel;
use abd_hfl::telemetry::{Event, Telemetry};

/// The shared small task (mirrors the golden fixtures' base).
fn base(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 4;
    cfg.eval_every = 2;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 800,
        ..SynthConfig::default()
    };
    cfg
}

fn with_async(mut cfg: HflConfig, deadline_us: u64, staleness_bound_us: u64) -> HflConfig {
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us,
        staleness_bound_us,
        link_delay: DelayModel::Uniform { lo: 500, hi: 5_000 },
        tier_deadlines: Vec::new(),
    });
    cfg
}

fn run_recording(cfg: &HflConfig) -> (InstrumentedRun, Vec<Event>, String) {
    let exp = Experiment::prepare(cfg);
    let (telem, rec) = Telemetry::recording();
    let run = run_prepared_with(&exp, &telem);
    let events = rec.events().to_vec();
    let rendered: String = events.iter().map(|e| format!("{e:?}\n")).collect();
    (run, events, rendered)
}

/// Every `BufferClosed` in the stream as `(cause, close_us, occupancy,
/// expected, round, level, cluster)`.
fn buffer_closes(events: &[Event]) -> Vec<(String, u64, usize, usize, usize, usize, usize)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::BufferClosed {
                round,
                level,
                cluster,
                cause,
                close_us,
                occupancy,
                expected,
            } => Some((
                cause.clone(),
                *close_us,
                *occupancy,
                *expected,
                *round,
                *level,
                *cluster,
            )),
            _ => None,
        })
        .collect()
}

#[test]
fn same_seed_async_runs_are_deterministic() {
    // The async close path draws from its own RNG stream; two runs of
    // the same (config, seed) must stay byte-identical across all three
    // fixture classes with a finite deadline.
    let clean = {
        let mut cfg = base(AttackCfg::None, 3024);
        cfg.quorum = 0.75;
        cfg.churn_leave_prob = 0.1;
        with_async(cfg, 4_000, 2_000)
    };
    let faulted = {
        let mut cfg = base(AttackCfg::None, 3025);
        cfg.quorum = 0.75;
        cfg.faults = Some(FaultPlan::new().crash_stop(1, 2).straggler(1, 6, 8.0, None));
        with_async(cfg, 4_000, 2_000)
    };
    let armed = {
        let mut cfg = base(
            AttackCfg::Adaptive {
                attack: AdaptiveAttack::alie_default(),
                proportion: 0.25,
                placement: Placement::Prefix,
            },
            3026,
        );
        cfg.suspicion = Some(SuspicionConfig::default());
        cfg.protocol_attack = Some(ProtocolAttack::StalenessExploit);
        with_async(cfg, 4_000, 2_000)
    };
    for (name, cfg) in [("clean", clean), ("faulted", faulted), ("armed", armed)] {
        let (a, _, ev_a) = run_recording(&cfg);
        let (b, _, ev_b) = run_recording(&cfg);
        assert_eq!(
            a.manifest.to_json(),
            b.manifest.to_json(),
            "{name}: same-seed async manifests differ"
        );
        assert_eq!(ev_a, ev_b, "{name}: same-seed async event streams differ");
        assert!(
            ev_a.contains("BufferClosed"),
            "{name}: async run never closed a buffer"
        );
    }
}

#[test]
fn quorum_close_wins_when_quorum_arrives_by_the_deadline() {
    // Constant 2 ms links, deadline exactly 2 ms: the quorum's arrival
    // ties the deadline and the tie goes to the quorum. Everyone lands
    // at the close instant, so every buffer is full and nothing is
    // stale.
    let mut cfg = base(AttackCfg::None, 3100);
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us: 2_000,
        staleness_bound_us: 1_000,
        link_delay: DelayModel::Constant { micros: 2_000 },
        tier_deadlines: Vec::new(),
    });
    let (_, events, _) = run_recording(&cfg);
    let closes = buffer_closes(&events);
    assert!(!closes.is_empty(), "no buffers closed");
    for (cause, close_us, occupancy, expected, ..) in &closes {
        assert_eq!(cause, "quorum", "tie must close as a quorum close");
        assert_eq!(*close_us, 2_000);
        assert_eq!(
            occupancy, expected,
            "constant delay admits everyone on time"
        );
    }
    assert!(
        !events.iter().any(|e| matches!(
            e,
            Event::StaleUpdateAdmitted { .. } | Event::StaleUpdateDropped { .. }
        )),
        "nothing can be stale when all arrivals are at the close"
    );
}

#[test]
fn deadline_close_admits_late_arrivals_within_tau() {
    // Constant 2 ms links, deadline 1999 µs: every arrival misses the
    // deadline by exactly 1 µs and is admitted as τ-late evidence.
    let mut cfg = base(AttackCfg::None, 3101);
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us: 1_999,
        staleness_bound_us: 1_000,
        link_delay: DelayModel::Constant { micros: 2_000 },
        tier_deadlines: Vec::new(),
    });
    let (_, events, _) = run_recording(&cfg);
    let closes = buffer_closes(&events);
    assert!(!closes.is_empty());
    for (cause, close_us, occupancy, ..) in &closes {
        assert_eq!(cause, "deadline");
        assert_eq!(*close_us, 1_999);
        assert_eq!(*occupancy, 0, "nobody arrives before a 1999 µs close");
    }
    let mut admitted = 0usize;
    for e in &events {
        if let Event::StaleUpdateAdmitted {
            lateness_us,
            weight,
            ..
        } = e
        {
            admitted += 1;
            assert_eq!(*lateness_us, 1);
            assert!(*weight > 0.99, "1 µs of lateness is a negligible discount");
        }
        assert!(
            !matches!(e, Event::StaleUpdateDropped { .. }),
            "1 µs late is inside τ = 1000 µs, nothing may drop"
        );
    }
    assert!(admitted > 0, "late arrivals within τ must be admitted");
}

#[test]
fn empty_buffer_extends_to_first_arrival_with_tau_zero() {
    // τ = 0 with every arrival past the deadline: the liveness floor
    // extends the close to the first arrival instead of closing empty,
    // and the boundary arrival counts as on-time (no stale events).
    let mut cfg = base(AttackCfg::None, 3102);
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us: 1_999,
        staleness_bound_us: 0,
        link_delay: DelayModel::Constant { micros: 2_000 },
        tier_deadlines: Vec::new(),
    });
    let (_, events, _) = run_recording(&cfg);
    let closes = buffer_closes(&events);
    assert!(!closes.is_empty());
    for (cause, close_us, occupancy, expected, ..) in &closes {
        assert_eq!(cause, "deadline");
        assert_eq!(*close_us, 2_000, "close extends to the first arrival");
        assert_eq!(occupancy, expected);
    }
    assert!(!events.iter().any(|e| matches!(
        e,
        Event::StaleUpdateAdmitted { .. } | Event::StaleUpdateDropped { .. }
    )),);
}

#[test]
fn straggler_plan_forces_deadline_closes_without_losing_liveness() {
    // φ = 1 with one member of cluster 0 straggling 1000×: its quorum
    // can never form by the deadline, so its buffers deadline-close,
    // drop the straggler beyond τ, and sanction the degraded quorum —
    // while every round still completes within deadline + max link
    // delay.
    let mut cfg = base(AttackCfg::None, 3103);
    cfg.quorum = 1.0;
    cfg.faults = Some(FaultPlan::new().straggler(0, 1, 1_000.0, None));
    let link = DelayModel::Uniform { lo: 500, hi: 5_000 };
    let deadline_us = 6_000;
    cfg.async_rounds = Some(AsyncRoundCfg {
        deadline_us,
        staleness_bound_us: 2_000,
        link_delay: link.clone(),
        tier_deadlines: Vec::new(),
    });
    let (run, events, _) = run_recording(&cfg);
    assert_eq!(
        run.manifest.rounds.len(),
        cfg.rounds,
        "every round must complete (liveness)"
    );
    let closes = buffer_closes(&events);
    assert!(
        closes.iter().any(|(cause, ..)| cause == "deadline"),
        "a 1000x straggler under φ = 1 must force deadline closes"
    );
    let bound = deadline_us + link.max_micros().expect("uniform link is bounded");
    for (_, close_us, .., round, level, cluster) in &closes {
        assert!(
            *close_us <= bound,
            "round {round} level {level} cluster {cluster} closed at {close_us} µs, \
             past deadline + max link delay = {bound} µs"
        );
    }
    assert!(
        events.iter().any(
            |e| matches!(e, Event::StaleUpdateDropped { lateness_us, .. } if *lateness_us > 2_000)
        ),
        "the straggler's update must eventually fall beyond τ and drop"
    );
    // Every below-quorum close is sanctioned at its own site.
    let degraded: Vec<(usize, usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            Event::DegradedQuorum {
                round,
                level,
                cluster,
                ..
            } => Some((*round, *level, *cluster)),
            _ => None,
        })
        .collect();
    for e in &events {
        if let Event::ClusterAggregated {
            round,
            level,
            cluster,
            inputs,
            quorum,
        } = e
        {
            if inputs < quorum {
                assert!(
                    degraded.contains(&(*round, *level, *cluster)),
                    "below-quorum close at round {round} level {level} cluster {cluster} \
                     lacks a DegradedQuorum sanction"
                );
            }
        }
    }
}

#[test]
fn staleness_exploit_is_admitted_only_at_the_bound() {
    // The staleness adversary stalls malicious members to just inside
    // τ. The protocol must keep its safety line: every admission within
    // τ (at the worst discount, half weight), never beyond it, and the
    // run keeps closing rounds.
    let mut cfg = base(
        AttackCfg::Adaptive {
            attack: AdaptiveAttack::alie_default(),
            proportion: 0.25,
            placement: Placement::Prefix,
        },
        3104,
    );
    cfg.quorum = 0.5;
    cfg.suspicion = Some(SuspicionConfig::default());
    cfg.protocol_attack = Some(ProtocolAttack::StalenessExploit);
    let tau = 2_000u64;
    let cfg = with_async(cfg, 4_000, tau);
    let (run, events, _) = run_recording(&cfg);
    assert_eq!(
        run.manifest.rounds.len(),
        cfg.rounds,
        "liveness under attack"
    );

    let mut stalled_admissions = 0usize;
    for e in &events {
        match e {
            Event::StaleUpdateAdmitted {
                lateness_us,
                weight,
                ..
            } => {
                assert!(
                    *lateness_us <= tau,
                    "staleness safety: admitted {lateness_us} µs late, bound is {tau}"
                );
                if *lateness_us == tau {
                    stalled_admissions += 1;
                    assert!(
                        (*weight - 0.5).abs() < 1e-6,
                        "an exactly-τ-late admission weighs half, got {weight}"
                    );
                }
            }
            Event::StaleUpdateDropped { lateness_us, .. } => {
                assert!(*lateness_us > tau, "drops happen only beyond τ");
            }
            _ => {}
        }
    }
    assert!(
        stalled_admissions > 0,
        "the coalition's stalled uploads must surface as exactly-τ admissions"
    );
    // The honest quorum keeps beating the stallers to the close: the
    // coalition never forces the deadline at the bottom.
    assert!(
        buffer_closes(&events)
            .iter()
            .any(|(cause, ..)| cause == "quorum"),
        "honest members alone still form quorum closes at φ = 0.5"
    );
}

#[test]
fn async_snapshot_resume_reproduces_the_straight_run() {
    // Capture-at-round-2 + resume must agree byte-for-byte with the
    // straight run under a finite deadline (the new stale counters and
    // the occupancy gauge cross the snapshot codec).
    let mut cfg = base(AttackCfg::None, 3105);
    cfg.quorum = 0.75;
    cfg.faults = Some(FaultPlan::new().straggler(0, 1, 50.0, None));
    let cfg = with_async(cfg, 3_000, 1_500);
    let exp = Experiment::prepare(&cfg);
    let (telem, _rec) = Telemetry::recording();
    let (straight, snapshots) = run_prepared_snapshotting(&exp, &telem, 2);
    let snap = snapshots
        .iter()
        .find(|s| s.round == 2)
        .expect("round-2 snapshot captured");
    let (resume_telem, _rec2) = Telemetry::recording();
    let resumed =
        resume_prepared_with(&exp, &resume_telem, snap).expect("async snapshot must resume");
    assert_eq!(
        straight.manifest.to_json(),
        resumed.manifest.to_json(),
        "resume diverged from the straight async run"
    );
}

#[test]
fn async_config_validation_rejects_nonsense() {
    let h = |cfg: &HflConfig| cfg.topology.build(cfg.seed);

    let zero_deadline = with_async(base(AttackCfg::None, 1), 0, 1_000);
    assert!(zero_deadline.try_validate(&h(&zero_deadline)).is_err());

    let mut bad_tier = with_async(base(AttackCfg::None, 2), 2_000, 1_000);
    bad_tier.async_rounds.as_mut().unwrap().tier_deadlines = vec![(99, 1_000)];
    assert!(bad_tier.try_validate(&h(&bad_tier)).is_err());

    let mut no_async = base(AttackCfg::None, 3);
    no_async.protocol_attack = Some(ProtocolAttack::StalenessExploit);
    assert!(
        no_async.try_validate(&h(&no_async)).is_err(),
        "StalenessExploit without async_rounds is meaningless"
    );

    let mut zero_tau = with_async(base(AttackCfg::None, 4), 2_000, 0);
    zero_tau.protocol_attack = Some(ProtocolAttack::StalenessExploit);
    assert!(
        zero_tau.try_validate(&h(&zero_tau)).is_err(),
        "stalling to 'just inside τ = 0' is on-time; reject the degenerate exploit"
    );

    let ok = with_async(base(AttackCfg::None, 5), 2_000, 1_000);
    assert!(ok.try_validate(&h(&ok)).is_ok());
}

#[test]
fn heterogeneity_profiles_shift_async_arrivals_only() {
    use abd_hfl::core::config::HeterogeneityCfg;

    // Under async rounds, per-client compute/bandwidth profiles stretch
    // arrival delays, so the event stream must differ from the
    // homogeneous run of the same seed...
    let plain = with_async(base(AttackCfg::None, 21), 2_000, 1_000);
    let mut hetero = plain.clone();
    hetero.heterogeneity = Some(HeterogeneityCfg::mixed_devices());
    let (_, _, plain_events) = run_recording(&plain);
    let (_, _, hetero_events) = run_recording(&hetero);
    assert_ne!(
        plain_events, hetero_events,
        "mixed-device profiles must perturb async arrival timing"
    );

    // ...and deterministically: same seed + same profiles, same stream.
    let (run_a, _, events_a) = run_recording(&hetero);
    let (run_b, _, events_b) = run_recording(&hetero);
    assert_eq!(events_a, events_b);
    assert_eq!(run_a.manifest.to_json(), run_b.manifest.to_json());
}

#[test]
fn heterogeneity_profiles_leave_the_sync_path_untouched() {
    use abd_hfl::core::config::HeterogeneityCfg;

    // Without async rounds there is no arrival synthesis, so profiles
    // are inert: the run must be byte-identical to the homogeneous one.
    let plain = base(AttackCfg::None, 22);
    let mut hetero = plain.clone();
    hetero.heterogeneity = Some(HeterogeneityCfg::mixed_devices());
    let (run_p, _, events_p) = run_recording(&plain);
    let (run_h, _, events_h) = run_recording(&hetero);
    assert_eq!(events_p, events_h, "sync path must ignore profiles");
    assert_eq!(
        run_p.result.accuracy, run_h.result.accuracy,
        "sync accuracy trace must be unchanged by inert profiles"
    );
}
