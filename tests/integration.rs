//! Cross-crate integration tests: the full ABD-HFL stack end to end,
//! exercising every subsystem together (data generation → partitioning →
//! attacks → local SGD → hierarchical robust aggregation → consensus →
//! evaluation).

use abd_hfl::attacks::{DataAttack, ModelAttack, Placement};
use abd_hfl::consensus::ConsensusKind;
use abd_hfl::core::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
use abd_hfl::core::run::run as run_abd_hfl;
use abd_hfl::core::runner::{run_prepared, Experiment};
use abd_hfl::core::theory;
use abd_hfl::core::vanilla::{paper_vanilla_aggregator, run_vanilla};
use abd_hfl::ml::synth::SynthConfig;
use abd_hfl::robust::AggregatorKind;

fn fast(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 25;
    cfg.eval_every = 25;
    cfg
}

#[test]
fn headline_result_abd_beats_vanilla_beyond_its_tolerance() {
    // The paper's headline contrast at 50 % Type I (Table V): ABD-HFL
    // ~90 %, vanilla Multi-Krum ~10 %.
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.5,
        placement: Placement::Prefix,
    };
    let cfg = fast(attack, 101);
    let abd = run_abd_hfl(&cfg);
    let vanilla = run_vanilla(&cfg, paper_vanilla_aggregator(true, 64));
    assert!(
        abd.final_accuracy > 0.8,
        "ABD-HFL degraded: {}",
        abd.final_accuracy
    );
    assert!(
        vanilla.final_accuracy < 0.6,
        "vanilla should collapse: {}",
        vanilla.final_accuracy
    );
    assert!(abd.final_accuracy > vanilla.final_accuracy + 0.3);
}

#[test]
fn clean_runs_match_between_topologies() {
    // Paper Table V at 0 %: ABD-HFL ≈ vanilla (hierarchy costs nothing).
    let cfg = fast(AttackCfg::None, 102);
    let abd = run_abd_hfl(&cfg);
    let vanilla = run_vanilla(&cfg, paper_vanilla_aggregator(true, 64));
    assert!(
        (abd.final_accuracy - vanilla.final_accuracy).abs() < 0.05,
        "clean accuracies diverge: {} vs {}",
        abd.final_accuracy,
        vanilla.final_accuracy
    );
}

#[test]
fn noniid_pipeline_works_end_to_end() {
    let attack = AttackCfg::Data {
        attack: DataAttack::type_ii(),
        proportion: 0.3,
        placement: Placement::Prefix,
    };
    let mut cfg = HflConfig::paper_noniid(attack, 103);
    cfg.rounds = 30;
    cfg.eval_every = 30;
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 1_000,
        ..SynthConfig::default()
    };
    let r = run_abd_hfl(&cfg);
    assert!(
        r.final_accuracy > 0.5,
        "non-IID run too weak: {}",
        r.final_accuracy
    );
}

#[test]
fn model_poisoning_is_filtered_by_the_hierarchy() {
    // Sign-flip from 25 % of clients: Multi-Krum clusters + vote top must
    // keep the model training.
    let attack = AttackCfg::Model {
        attack: ModelAttack::SignFlip { scale: 4.0 },
        proportion: 0.25,
        placement: Placement::Spread,
    };
    let cfg = fast(attack, 104);
    let r = run_abd_hfl(&cfg);
    assert!(
        r.final_accuracy > 0.75,
        "sign-flip broke ABD-HFL: {}",
        r.final_accuracy
    );
}

#[test]
fn definition4_at_bound_holds_beyond_breaks() {
    // Theorem 2 empirically, at integration scope: Scheme-3 (BRA
    // everywhere) on the paper topology with Definition 4 placement.
    let h = abd_hfl::simnet::Hierarchy::ecsm(3, 4, 4);
    let scheme3_levels = vec![
        LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 }),
        LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 }),
        LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 }),
    ];

    let run_with = |per_cluster: usize, seed: u64| {
        let mask = theory::definition4_placement(&h, 1, per_cluster);
        let proportion = mask.iter().filter(|b| **b).count() as f64 / mask.len() as f64;
        let mut cfg = fast(
            AttackCfg::Data {
                attack: DataAttack::type_i(),
                proportion,
                placement: Placement::Prefix,
            },
            seed,
        );
        cfg.malicious_override = Some(mask);
        cfg.levels = scheme3_levels.clone();
        run_abd_hfl(&cfg).final_accuracy
    };

    let at_bound = run_with(1, 105); // 57.8 % Byzantine, γ2 respected
    let beyond = run_with(2, 105); // 81 % Byzantine, γ2 violated
    assert!(at_bound > 0.8, "at-bound run collapsed: {at_bound}");
    assert!(beyond < 0.4, "beyond-bound run survived: {beyond}");
}

#[test]
fn acsm_topology_trains() {
    let mut cfg = fast(AttackCfg::None, 106);
    cfg.topology = TopologyCfg::AcsmRandom {
        n_bottom: 60,
        total_levels: 3,
        min_size: 3,
        max_size: 8,
    };
    cfg.levels = vec![
        LevelAgg::Cba(ConsensusKind::VoteMajority),
        LevelAgg::Bra(AggregatorKind::Median),
        LevelAgg::Bra(AggregatorKind::Median),
    ];
    let r = run_abd_hfl(&cfg);
    assert!(r.final_accuracy > 0.7, "ACSM run: {}", r.final_accuracy);
}

#[test]
fn experiment_reuse_is_equivalent_to_fresh_runs() {
    let cfg = fast(AttackCfg::None, 107);
    let exp = Experiment::prepare(&cfg);
    let a = run_prepared(&exp);
    let b = run_abd_hfl(&cfg);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.messages, b.messages);
}

#[test]
fn all_consensus_backends_complete_a_round() {
    for kind in [
        ConsensusKind::VoteMajority,
        ConsensusKind::Vote { exclude: 1 },
        ConsensusKind::Committee {
            size: 3,
            exclude: 1,
        },
        ConsensusKind::Pbft,
        ConsensusKind::Approx {
            epsilon: 1e-3,
            trim: 1,
        },
    ] {
        let mut cfg = fast(AttackCfg::None, 108);
        cfg.rounds = 5;
        cfg.eval_every = 5;
        cfg.levels[0] = LevelAgg::Cba(kind.clone());
        let r = run_abd_hfl(&cfg);
        assert!(
            r.final_accuracy > 0.3,
            "{kind:?} run failed: {}",
            r.final_accuracy
        );
    }
}

#[test]
fn all_bra_rules_complete_a_round() {
    for kind in [
        AggregatorKind::FedAvg,
        AggregatorKind::Krum { f: 1 },
        AggregatorKind::MultiKrum { f: 1, m: 3 },
        AggregatorKind::Median,
        AggregatorKind::TrimmedMean { ratio: 0.25 },
        AggregatorKind::GeoMed,
        AggregatorKind::CenteredClip { tau: 2.0, iters: 3 },
        AggregatorKind::CosineClustering { threshold: 0.0 },
    ] {
        let mut cfg = fast(AttackCfg::None, 109);
        cfg.rounds = 5;
        cfg.eval_every = 5;
        cfg.levels[1] = LevelAgg::Bra(kind.clone());
        cfg.levels[2] = LevelAgg::Bra(kind.clone());
        let r = run_abd_hfl(&cfg);
        assert!(
            r.final_accuracy > 0.3,
            "{kind:?} run failed: {}",
            r.final_accuracy
        );
    }
}

#[test]
fn message_accounting_scales_with_rounds() {
    let mut cfg = fast(AttackCfg::None, 110);
    cfg.rounds = 4;
    let four = run_abd_hfl(&cfg);
    cfg.rounds = 8;
    let eight = run_abd_hfl(&cfg);
    assert_eq!(eight.messages, 2 * four.messages);
    assert_eq!(eight.bytes, 2 * four.bytes);
}
