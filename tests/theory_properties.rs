//! Property-based tests of the tolerance theory (Theorems 1–3,
//! Corollaries 1–3) over randomized parameters and random ACSM
//! hierarchies — the induction hypotheses of the paper's proofs stated
//! as executable invariants.

use proptest::prelude::*;

use abd_hfl::core::theory;
use abd_hfl::simnet::Hierarchy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem2_ratio_is_a_proportion(
        g1 in 0.0f64..=1.0,
        g2 in 0.0f64..=1.0,
        level in 0usize..10,
    ) {
        let r = theory::theorem2_max_byzantine_ratio(g1, g2, level);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn theorem2_monotone_in_level(
        g1 in 0.0f64..0.99,
        g2 in 0.001f64..0.99,
        level in 0usize..8,
    ) {
        let upper = theory::theorem2_max_byzantine_ratio(g1, g2, level);
        let lower = theory::theorem2_max_byzantine_ratio(g1, g2, level + 1);
        prop_assert!(lower >= upper, "Corollary 2 violated: {lower} < {upper}");
    }

    #[test]
    fn theorem2_monotone_in_gammas(
        g1 in 0.0f64..0.9,
        g2 in 0.0f64..0.9,
        dg in 0.01f64..0.1,
        level in 0usize..6,
    ) {
        let base = theory::theorem2_max_byzantine_ratio(g1, g2, level);
        prop_assert!(theory::theorem2_max_byzantine_ratio(g1 + dg, g2, level) >= base);
        prop_assert!(theory::theorem2_max_byzantine_ratio(g1, g2 + dg, level) >= base);
    }

    #[test]
    fn theorem2_count_ratio_consistency(
        n_top in 1usize..6,
        m in 1usize..5,
        g1 in 0.0f64..=1.0,
        g2 in 0.0f64..=1.0,
        level in 0usize..6,
    ) {
        let count = theory::theorem2_max_byzantine_count(n_top, m, g1, g2, level);
        let size = theory::corollary1_level_size(n_top, m, level) as f64;
        let ratio = theory::theorem2_max_byzantine_ratio(g1, g2, level);
        prop_assert!((count / size - ratio).abs() < 1e-9);
    }

    #[test]
    fn theorem1_counts_match_ratio_times_size(
        p in 0.0f64..=1.0,
        m in 1usize..6,
        level in 0usize..8,
    ) {
        let count = theory::theorem1_type1_count(p, m, level);
        let total = (m as f64).powi(level as i32);
        let ratio = theory::theorem1_type1_ratio(p, level);
        prop_assert!((count - ratio * total).abs() < 1e-6 * (1.0 + count.abs()));
    }

    #[test]
    fn corollary3_strictly_monotone(
        g1 in 0.01f64..0.9,
        g2 in 0.01f64..0.9,
        levels in 2usize..8,
    ) {
        let a = theory::corollary3_bottom_tolerance(g1, g2, levels);
        let b = theory::corollary3_bottom_tolerance(g1, g2, levels + 1);
        prop_assert!(b > a);
    }

    #[test]
    fn definition4_placement_matches_theorem2(
        levels in 2usize..4,
        m in 2usize..5,
        n_top in 2usize..5,
    ) {
        // At-bound placement: top_byz = ⌊γ1·Nt⌋, per_cluster = ⌊γ2·m⌋
        // with γ1 = 1/n_top, γ2 = 1/m (one Byzantine each).
        let h = Hierarchy::ecsm(levels, m, n_top);
        let mask = theory::definition4_placement(&h, 1, 1);
        let bad = mask.iter().filter(|b| **b).count();
        let want = theory::theorem2_max_byzantine_ratio(
            1.0 / n_top as f64,
            1.0 / m as f64,
            levels - 1,
        ) * h.num_clients() as f64;
        prop_assert!(
            (bad as f64 - want).abs() < 1e-6,
            "placement gives {bad}, Theorem 2 bound says {want}"
        );
    }

    #[test]
    fn theorem3_acsm_psi_consistency(
        n in 20usize..80,
        seed in 0u64..200,
        honest_bits in prop::collection::vec(any::<bool>(), 50),
    ) {
        // Random ACSM level; random honest/Byzantine clusters: ψ is the
        // honest cluster mass, and Theorem 3's bound decreases in ψ.
        let h = Hierarchy::acsm_random(n, 3, 2, 6, seed);
        let level = h.level(2);
        let sizes: Vec<usize> = level.clusters.iter().map(|c| c.len()).collect();
        let honest: Vec<bool> = (0..sizes.len())
            .map(|i| honest_bits[i % honest_bits.len()])
            .collect();
        let psi = theory::relative_reliable_number(&sizes, &honest);
        prop_assert!((0.0..=1.0).contains(&psi));
        let p = theory::theorem3_max_byzantine_ratio(0.25, psi, false);
        prop_assert!((0.0..=1.0).contains(&p));
        // Inverse proportionality (Theorem 3): more reliable mass, less
        // tolerated Byzantine share.
        let p_more = theory::theorem3_max_byzantine_ratio(0.25, (psi + 0.1).min(1.0), false);
        prop_assert!(p_more <= p + 1e-12);
    }

    #[test]
    fn ecsm_structural_invariants_hold(
        levels in 2usize..5,
        m in 1usize..5,
        n_top in 1usize..5,
    ) {
        // validate() encodes the defining ABD-HFL properties; it must
        // never panic for any ECSM parameters.
        let h = Hierarchy::ecsm(levels, m, n_top);
        h.validate();
        // Top level is one cluster of exactly n_top nodes.
        prop_assert_eq!(h.level(0).num_clusters(), 1);
        prop_assert_eq!(h.level(0).num_nodes(), n_top);
    }
}
