//! Arms-race integration tests: the full stack under the adaptive
//! adversary, the suspicion/quarantine layer, and the protocol-level
//! attacks (leader equivocation, selective withholding).

use abd_hfl::attacks::{AdaptiveAttack, ModelAttack, Placement, ProtocolAttack};
use abd_hfl::core::config::{AttackCfg, HflConfig, LevelAgg};
use abd_hfl::core::run::RunOptions;
use abd_hfl::robust::{AggregatorKind, SuspicionConfig};
use abd_hfl::telemetry::{Event, Telemetry};

fn run_abd_hfl_with(
    cfg: &abd_hfl::core::HflConfig,
    telem: &Telemetry,
) -> abd_hfl::core::InstrumentedRun {
    RunOptions::new().telemetry(telem).run(cfg).into_sync()
}

/// The quick topology (64 clients, bottom clusters of 4) with Multi-Krum
/// at every level — BRA everywhere so the evidence path, not consensus,
/// is what the tests exercise.
fn arms_cfg(attack: AttackCfg, seed: u64, rounds: usize) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    let mk = AggregatorKind::MultiKrum { f: 1, m: 3 };
    cfg.levels = vec![
        LevelAgg::Bra(mk.clone()),
        LevelAgg::Bra(mk.clone()),
        LevelAgg::Bra(mk),
    ];
    cfg
}

/// One malicious *follower* per bottom cluster (clients 1, 5, 9, …):
/// exactly the f = 1 the aggregator assumes, spread so every cluster has
/// honest members to observe.
fn one_follower_per_cluster_mask(n: usize) -> Vec<bool> {
    (0..n).map(|c| c % 4 == 1).collect()
}

#[test]
fn adaptive_adversary_emits_bounded_magnitudes_and_moves() {
    let attack = AttackCfg::Adaptive {
        attack: AdaptiveAttack::alie_default(),
        proportion: 0.25,
        placement: Placement::Prefix,
    };
    let cfg = arms_cfg(attack, 301, 10);
    let (telem, rec) = Telemetry::recording();
    let run = run_abd_hfl_with(&cfg, &telem);
    let magnitudes: Vec<f64> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::AttackAdapted {
                magnitude,
                submitted,
                ..
            } => {
                assert!(*submitted > 0, "malicious inputs must reach aggregation");
                Some(*magnitude)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        magnitudes.len(),
        cfg.rounds,
        "one adaptation step per round"
    );
    let (_, z_max) = AdaptiveAttack::alie_default().bounds();
    assert!(
        magnitudes
            .iter()
            .all(|m| *m > 0.0 && *m <= f64::from(z_max) + 1e-9),
        "magnitudes must stay inside the attack's bounds: {magnitudes:?}"
    );
    assert!(
        magnitudes.windows(2).any(|w| w[0] != w[1]),
        "bisection must actually move the magnitude: {magnitudes:?}"
    );
    assert!(run.result.final_accuracy.is_finite());
}

#[test]
fn suspicion_quarantines_the_coalition_not_the_honest() {
    // One sign-flipping follower per cluster at scale 10: the outlier's
    // Krum score separates from the honest cohort by far more than the
    // evidence gate's 4 × median, so it collects the 1.0 worst-rank
    // strike every pre-quarantine round, while honest members — inside
    // the gate — collect none. With threshold 3.0 the attacker crosses
    // within 4 rounds and quarantines are provably ⊆ malicious.
    let mut cfg = arms_cfg(
        AttackCfg::Model {
            attack: ModelAttack::SignFlip { scale: 10.0 },
            proportion: 0.25,
            placement: Placement::Prefix,
        },
        302,
        7,
    );
    let n = cfg.topology.build(cfg.seed).num_clients();
    cfg.malicious_override = Some(one_follower_per_cluster_mask(n));
    cfg.suspicion = Some(SuspicionConfig {
        decay: 0.8,
        quarantine_threshold: 3.0,
        release_threshold: 0.8,
    });
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert!(
        run.result.quarantined_total > 0,
        "the coalition must lose client-rounds to quarantine"
    );
    let suspicion = run
        .manifest
        .suspicion
        .as_ref()
        .expect("suspicion section must be in the manifest when the layer runs");
    let quarantined: Vec<usize> = suspicion
        .events
        .iter()
        .filter(|e| e.kind == "quarantined")
        .map(|e| e.client)
        .collect();
    assert!(
        quarantined.len() >= n / 8,
        "expected most of the 16 attackers quarantined, got {quarantined:?}"
    );
    assert!(
        quarantined.iter().all(|c| c % 4 == 1),
        "every quarantined client must be malicious: {quarantined:?}"
    );
    assert!(
        suspicion
            .final_scores
            .iter()
            .filter(|s| s.quarantined)
            .all(|s| s.client % 4 == 1),
        "final quarantine flags must only mark malicious clients"
    );
}

#[test]
fn equivocating_leaders_are_convicted_by_the_echo_audit() {
    // Prefix placement at 25 % makes bottom clusters 0–3 fully malicious
    // — leaders included. Under Equivocate each of those leaders sends a
    // flipped partial upward exactly once: the member echo catches the
    // digest mismatch in the same round and the leader is repaired.
    let mut cfg = arms_cfg(
        AttackCfg::Model {
            attack: ModelAttack::Alie { z: 1.5 },
            proportion: 0.25,
            placement: Placement::Prefix,
        },
        303,
        8,
    );
    cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
    cfg.suspicion = Some(SuspicionConfig::default());
    let (telem, rec) = Telemetry::recording();
    let run = run_abd_hfl_with(&cfg, &telem);
    let detections: Vec<(usize, usize)> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::EquivocationDetected { round, leader, .. } => Some((*round, *leader)),
            _ => None,
        })
        .collect();
    assert_eq!(
        detections.len(),
        4,
        "each of the 4 malicious leaders is convicted exactly once: {detections:?}"
    );
    for (round, leader) in &detections {
        assert!(
            *round <= 1,
            "detection latency must be within 2 rounds, got round {round}"
        );
        assert!(
            leader % 4 == 0 && *leader < 16,
            "convicted node {leader} is not a malicious bottom leader"
        );
    }
    assert!(
        run.result.final_accuracy.is_finite(),
        "the run must survive equivocation"
    );
}

#[test]
fn withholding_is_pivotal_only_below_full_quorum() {
    let base = |quorum: f64| {
        let mut cfg = arms_cfg(
            AttackCfg::Model {
                attack: ModelAttack::SignFlip { scale: 2.0 },
                proportion: 0.25,
                placement: Placement::Prefix,
            },
            304,
            5,
        );
        let n = cfg.topology.build(cfg.seed).num_clients();
        cfg.malicious_override = Some(one_follower_per_cluster_mask(n));
        cfg.protocol_attack = Some(ProtocolAttack::Withhold);
        cfg.quorum = quorum;
        cfg
    };
    // φ = 0.75 of a 4-cluster needs 3 models: the single malicious
    // follower can withhold and the quorum still forms.
    let (telem, rec) = Telemetry::recording();
    let degraded = run_abd_hfl_with(&base(0.75), &telem);
    assert!(
        degraded.result.withheld_total > 0,
        "withholding must fire at φ = 0.75"
    );
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, Event::UpdateWithheld { .. })),
        "withheld updates must be visible as events"
    );
    // φ = 1 needs every present member: withholding would break the
    // quorum, so the pivotal rule never fires.
    let full = run_abd_hfl_with(&base(1.0), &Telemetry::disabled());
    assert_eq!(
        full.result.withheld_total, 0,
        "withholding must never fire at φ = 1"
    );
}

#[test]
fn all_malicious_population_degrades_instead_of_panicking() {
    let mut cfg = arms_cfg(
        AttackCfg::Model {
            attack: ModelAttack::SignFlip { scale: 1.0 },
            proportion: 1.0,
            placement: Placement::Prefix,
        },
        305,
        3,
    );
    cfg.suspicion = Some(SuspicionConfig::default());
    let (telem, rec) = Telemetry::recording();
    let run = run_abd_hfl_with(&cfg, &telem);
    assert!(run.result.final_accuracy.is_finite());
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            Event::Anomaly { kind, .. } if kind == "attack_no_honest_updates"
        )),
        "crafting with no honest updates must be recorded as an anomaly"
    );
}

#[test]
fn same_seed_arms_race_runs_have_byte_identical_manifests() {
    let build = || {
        let mut cfg = arms_cfg(
            AttackCfg::Adaptive {
                attack: AdaptiveAttack::ipm_default(),
                proportion: 0.25,
                placement: Placement::Prefix,
            },
            306,
            8,
        );
        cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 1.0 });
        cfg.suspicion = Some(SuspicionConfig::default());
        cfg
    };
    let a = run_abd_hfl_with(&build(), &Telemetry::disabled());
    let b = run_abd_hfl_with(&build(), &Telemetry::disabled());
    assert_eq!(
        a.manifest.to_json(),
        b.manifest.to_json(),
        "identical seeds must give byte-identical manifests under the full arms race"
    );
    assert!(
        a.manifest.suspicion.is_some(),
        "the suspicion section must be present when the layer is enabled"
    );
}

#[test]
fn suspicion_off_keeps_the_manifest_schema_lean() {
    let cfg = arms_cfg(AttackCfg::None, 307, 3);
    let run = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert!(
        run.manifest.suspicion.is_none(),
        "plain runs must not grow a suspicion section"
    );
    assert_eq!(run.result.quarantined_total, 0);
    assert_eq!(run.result.withheld_total, 0);
}
