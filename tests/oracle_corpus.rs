//! Replays every corpus case in `tests/corpus/` against all seven
//! oracles. Cases land here in two ways: seeded by hand as diverse
//! regression anchors, or persisted automatically by `fuzz_oracle`
//! when it shrinks a real violation — either way, once a case is in
//! the corpus it must pass forever.

use abd_hfl::oracle::harness::check;
use abd_hfl::oracle::toml::from_toml;

#[test]
fn every_corpus_case_upholds_all_seven_oracles() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {dir}: {e}"))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "corpus at {dir} is empty — the seeded cases are missing"
    );
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let spec =
            from_toml(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let (_, violations) = check(&spec, None)
            .unwrap_or_else(|e| panic!("{} is not a valid scenario: {e}", path.display()));
        assert!(
            violations.is_empty(),
            "{} regressed:\n{}",
            path.display(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
