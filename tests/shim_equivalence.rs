//! The deprecated entry-point shims (`run_abd_hfl*`, `run_pipeline*`)
//! must stay *byte-identical* to the unified `run::RunOptions` driver —
//! same result and same rendered manifest — until they are removed.
//! (The in-crate tests check scalar outcomes; this suite pins the whole
//! manifest byte stream, which is what downstream tooling diffs.)

#![allow(deprecated)]

use abd_hfl::attacks::{ModelAttack, Placement};
use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::pipeline::{run_pipeline, run_pipeline_with, PipelineConfig};
use abd_hfl::core::run::RunOptions;
use abd_hfl::core::runner::{run_abd_hfl, run_abd_hfl_with};
use abd_hfl::robust::SuspicionConfig;
use abd_hfl::telemetry::Telemetry;

fn tiny(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 3;
    cfg.eval_every = 3;
    cfg
}

fn signflip() -> AttackCfg {
    AttackCfg::Model {
        attack: ModelAttack::SignFlip { scale: 2.0 },
        proportion: 0.25,
        placement: Placement::Prefix,
    }
}

/// The sync shim and the unified driver render byte-identical manifests
/// (and identical results) for clean, attacked, and arms-race configs.
#[test]
fn sync_shim_manifest_is_byte_identical_to_the_unified_driver() {
    let mut armed = tiny(signflip(), 46);
    armed.suspicion = Some(SuspicionConfig::default());
    for cfg in [tiny(AttackCfg::None, 44), tiny(signflip(), 45), armed] {
        let (telem_a, _rec_a) = Telemetry::recording();
        let shim = run_abd_hfl_with(&cfg, &telem_a);
        let (telem_b, _rec_b) = Telemetry::recording();
        let unified = RunOptions::new().telemetry(&telem_b).run(&cfg).into_sync();
        assert_eq!(shim.result, unified.result);
        assert_eq!(
            shim.manifest.to_json(),
            unified.manifest.to_json(),
            "sync shim manifest diverged from run::RunOptions"
        );
    }
}

/// Same for the pipeline shim pair.
#[test]
fn pipeline_shim_manifest_is_byte_identical_to_the_unified_driver() {
    let cfg = tiny(signflip(), 47);
    let pcfg = PipelineConfig {
        rounds: 2,
        ..PipelineConfig::default()
    };
    let (telem_a, _rec_a) = Telemetry::recording();
    let (shim_res, shim_manifest) = run_pipeline_with(&cfg, &pcfg, &telem_a);
    let (telem_b, _rec_b) = Telemetry::recording();
    let (uni_res, uni_manifest) = RunOptions::pipeline(&pcfg)
        .telemetry(&telem_b)
        .run(&cfg)
        .into_pipeline();
    assert_eq!(shim_res.final_accuracy, uni_res.final_accuracy);
    assert_eq!(shim_res.messages, uni_res.messages);
    assert_eq!(
        shim_manifest.to_json(),
        uni_manifest.to_json(),
        "pipeline shim manifest diverged from run::RunOptions::pipeline"
    );
}

/// The telemetry-free shims agree with their instrumented twins (the
/// disabled-telemetry path must not change the computation).
#[test]
fn telemetry_free_shims_match_their_instrumented_twins() {
    let cfg = tiny(signflip(), 48);
    let bare = run_abd_hfl(&cfg);
    let instrumented = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    assert_eq!(bare, instrumented.result);

    let pcfg = PipelineConfig {
        rounds: 2,
        ..PipelineConfig::default()
    };
    let bare = run_pipeline(&cfg, &pcfg);
    let (instrumented, _) = run_pipeline_with(&cfg, &pcfg, &Telemetry::disabled());
    assert_eq!(bare.final_accuracy, instrumented.final_accuracy);
    assert_eq!(bare.messages, instrumented.messages);
}
