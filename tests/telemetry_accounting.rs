//! Telemetry accounting invariants: the structured `MessagesSent` events,
//! the `hfl_*` metric counters, the `RunManifest` totals and the public
//! `RunResult` cost counters must all agree — and, for all-BRA ECSM
//! topologies with full quorum and no churn, must match the closed-form
//! message count of Algorithms 3–5:
//!
//! ```text
//! per round:  Σ_{ℓ=1..L} 2·N_ℓ   (partial agg: upload + broadcast)
//!           + 2·N_top            (top-cluster aggregation)
//!           + Σ_{ℓ=1..L} N_ℓ     (global-model dissemination)
//! ```

use abd_hfl::core::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
use abd_hfl::core::run::RunOptions;
use abd_hfl::robust::AggregatorKind;
use abd_hfl::telemetry::{Event, Telemetry};

fn run_abd_hfl_with(
    cfg: &abd_hfl::core::HflConfig,
    telem: &Telemetry,
) -> abd_hfl::core::InstrumentedRun {
    RunOptions::new().telemetry(telem).run(cfg).into_sync()
}

/// An all-BRA configuration where every message is countable exactly:
/// full quorum, no churn, no attack.
fn countable_cfg(total_levels: usize, m: usize, n_top: usize, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.topology = TopologyCfg::Ecsm {
        total_levels,
        m,
        n_top,
    };
    cfg.levels = vec![LevelAgg::Bra(AggregatorKind::FedAvg); total_levels];
    cfg.quorum = 1.0;
    cfg.churn_leave_prob = 0.0;
    cfg.rounds = 3;
    cfg.eval_every = 3;
    cfg
}

/// The closed-form per-round message count for the all-BRA ECSM run.
fn expected_messages_per_round(cfg: &HflConfig) -> u64 {
    let h = match cfg.topology {
        TopologyCfg::Ecsm {
            total_levels,
            m,
            n_top,
        } => abd_hfl::simnet::Hierarchy::ecsm(total_levels, m, n_top),
        _ => panic!("countable configs are ECSM"),
    };
    let bottom = h.bottom_level();
    let below_top: u64 = (1..=bottom).map(|l| h.level(l).num_nodes() as u64).sum();
    // Partial aggregation (2 per node), top aggregation, dissemination.
    2 * below_top + 2 * h.level(0).num_nodes() as u64 + below_top
}

fn check_conservation(total_levels: usize, m: usize, n_top: usize, seed: u64) {
    let cfg = countable_cfg(total_levels, m, n_top, seed);
    let (telem, recorder) = Telemetry::recording();
    let run = run_abd_hfl_with(&cfg, &telem);

    let expected = expected_messages_per_round(&cfg) * cfg.rounds as u64;
    assert_eq!(
        run.result.messages, expected,
        "RunResult.messages diverges from the closed-form count"
    );

    // Counter ↔ result ↔ manifest agree.
    let counted = telem.registry().counter("hfl_messages_total", &[]).get();
    assert_eq!(counted, run.result.messages, "counter vs RunResult");
    assert_eq!(
        run.manifest.totals.messages, run.result.messages,
        "manifest totals vs RunResult"
    );
    assert_eq!(
        telem.registry().counter("hfl_bytes_total", &[]).get(),
        run.result.bytes,
        "bytes counter vs RunResult"
    );

    // Per-round manifest records sum to the totals.
    let round_sum: u64 = run.manifest.rounds.iter().map(|r| r.messages).sum();
    assert_eq!(round_sum, run.result.messages, "manifest rounds vs totals");

    // Every cost increment was mirrored by a MessagesSent event.
    let events = recorder.events();
    let (event_msgs, event_bytes) = events.iter().fold((0u64, 0u64), |acc, e| match e {
        Event::MessagesSent { count, bytes, .. } => (acc.0 + count, acc.1 + bytes),
        _ => acc,
    });
    assert_eq!(event_msgs, run.result.messages, "MessagesSent event sum");
    assert_eq!(event_bytes, run.result.bytes, "MessagesSent byte sum");

    // Bytes are messages × one fixed per-model payload.
    assert_eq!(run.result.bytes % run.result.messages, 0);
    assert!(run.result.bytes / run.result.messages >= 4);

    // No churn, no attack: nothing absent, nothing excluded.
    assert_eq!(run.result.absent_total, 0);
    assert_eq!(run.result.excluded_total, 0);
}

#[test]
fn messages_and_bytes_are_conserved_in_three_level_ecsm() {
    // The paper's evaluation shape: 3 levels, m = 4, 4 top nodes.
    check_conservation(3, 4, 4, 2024);
}

#[test]
fn messages_and_bytes_are_conserved_in_two_level_ecsm() {
    check_conservation(2, 4, 4, 2025);
}

#[test]
fn recording_and_disabled_telemetry_agree_on_all_costs() {
    let cfg = countable_cfg(3, 4, 4, 77);
    let (telem, _recorder) = Telemetry::recording();
    let recorded = run_abd_hfl_with(&cfg, &telem);
    let silent = run_abd_hfl_with(&cfg, &Telemetry::disabled());
    // Instrumentation only observes: identical numerics either way.
    assert_eq!(recorded.result.final_accuracy, silent.result.final_accuracy);
    assert_eq!(recorded.result.messages, silent.result.messages);
    assert_eq!(recorded.result.bytes, silent.result.bytes);
    assert_eq!(
        recorded.manifest.to_json().to_string(),
        silent.manifest.to_json().to_string(),
        "manifests must not depend on whether events were recorded"
    );
}
