//! Attack–defense gallery containment tests (DESIGN.md §13).
//!
//! Every attack family the gallery ships must be *contained* — final
//! accuracy within ε = 0.25 of the same-defense clean run — by at
//! least one composed (pre-aggregation + base rule) defense, under
//! both IID and Dirichlet-α partitions. The flip side is asserted too:
//! a documented failure pairing where the attack blows past ε, so the
//! containment claims stay falsifiable (a grid where nothing can fail
//! measures nothing).
//!
//! All levels aggregate with the BRA under test: the paper's top-level
//! consensus vote would exclude poisoned proposals outright and mask
//! the aggregation-level arms race these bounds measure.

use abd_hfl::attacks::{ModelAttack, Placement};
use abd_hfl::core::config::{AttackCfg, DataDistribution, HflConfig, LevelAgg};
use abd_hfl::core::runner::{run_prepared_with, Experiment};
use abd_hfl::ml::synth::SynthConfig;
use abd_hfl::robust::AggregatorKind;
use abd_hfl::telemetry::Telemetry;

/// The containment budget, mirroring the oracle's Byzantine ε.
const EPSILON: f64 = 0.25;

fn final_accuracy(attack: AttackCfg, kind: AggregatorKind, dist: DataDistribution) -> f64 {
    let mut cfg = HflConfig::quick(attack, 42);
    cfg.rounds = 3;
    cfg.eval_every = 3;
    cfg.data = SynthConfig {
        train_samples: 1_600,
        test_samples: 400,
        ..SynthConfig::default()
    };
    cfg.distribution = dist;
    cfg.levels = vec![LevelAgg::Bra(kind); 3];
    let exp = Experiment::prepare(&cfg);
    let (telem, _rec) = Telemetry::recording();
    run_prepared_with(&exp, &telem).result.final_accuracy
}

fn attack(model: ModelAttack) -> AttackCfg {
    AttackCfg::Model {
        attack: model,
        proportion: 0.25,
        placement: Placement::Prefix,
    }
}

/// NNM (k = 3) in front of Krum: the composed defense that contains
/// every gallery attack family.
fn nnm_krum() -> AggregatorKind {
    AggregatorKind::Nnm {
        k: 3,
        inner: Box::new(AggregatorKind::Krum { f: 1 }),
    }
}

fn assert_contained(name: &str, model: ModelAttack, kind: AggregatorKind, dist: DataDistribution) {
    let clean = final_accuracy(AttackCfg::None, kind.clone(), dist.clone());
    let attacked = final_accuracy(attack(model), kind, dist);
    assert!(
        (clean - attacked).abs() <= EPSILON,
        "{name}: clean {clean:.3} vs attacked {attacked:.3} exceeds ε = {EPSILON}"
    );
}

#[test]
fn mimic_is_contained_by_nnm_krum() {
    assert_contained(
        "mimic/nnm3+krum/iid",
        ModelAttack::Mimic { victim: 0 },
        nnm_krum(),
        DataDistribution::Iid,
    );
}

#[test]
fn scaling_is_contained_by_centered_clip() {
    assert_contained(
        "scaling/centered_clip/iid",
        ModelAttack::Scaling { factor: -10.0 },
        AggregatorKind::CenteredClip { tau: 2.0, iters: 3 },
        DataDistribution::Iid,
    );
}

#[test]
fn scaling_is_contained_by_nnm_krum_under_dirichlet() {
    assert_contained(
        "scaling/nnm3+krum/dirichlet",
        ModelAttack::Scaling { factor: -10.0 },
        nnm_krum(),
        DataDistribution::Dirichlet { alpha: 0.5 },
    );
}

#[test]
fn minmax_is_contained_by_nnm_krum() {
    assert_contained(
        "minmax/nnm3+krum/iid",
        ModelAttack::MinMax,
        nnm_krum(),
        DataDistribution::Iid,
    );
}

#[test]
fn minsum_is_contained_by_nnm_krum_under_dirichlet() {
    assert_contained(
        "minsum/nnm3+krum/dirichlet",
        ModelAttack::MinSum,
        nnm_krum(),
        DataDistribution::Dirichlet { alpha: 0.5 },
    );
}

/// The documented failure pairing: a −10× reflection by 25 % malicious
/// against plain averaging destroys the model — FedAvg tolerates zero
/// Byzantine inputs, and the gallery must show it.
#[test]
fn scaling_against_fedavg_exceeds_epsilon() {
    let clean = final_accuracy(
        AttackCfg::None,
        AggregatorKind::FedAvg,
        DataDistribution::Iid,
    );
    let attacked = final_accuracy(
        attack(ModelAttack::Scaling { factor: -10.0 }),
        AggregatorKind::FedAvg,
        DataDistribution::Iid,
    );
    assert!(
        (clean - attacked).abs() > EPSILON,
        "the failure pairing must fail: clean {clean:.3} vs attacked {attacked:.3}"
    );
}

/// A composition can *degenerate*: bucketing s = 2 over a 4-member
/// cluster leaves two bucket means, and the median of two points is
/// their mean — exactly FedAvg, so the composed tolerance is 0 and the
/// scaling attack sails through. The composed-tolerance arithmetic
/// (`PreAggSpec::composed_tolerance`) predicts this pairing is
/// ineligible for any containment bound; assert the prediction holds.
#[test]
fn scaling_against_degenerate_bucketed_median_exceeds_epsilon() {
    let bucketed_median = AggregatorKind::Bucketing {
        s: 2,
        inner: Box::new(AggregatorKind::Median),
    };
    let clean = final_accuracy(
        AttackCfg::None,
        bucketed_median.clone(),
        DataDistribution::Iid,
    );
    let attacked = final_accuracy(
        attack(ModelAttack::Scaling { factor: -10.0 }),
        bucketed_median,
        DataDistribution::Iid,
    );
    assert!(
        (clean - attacked).abs() > EPSILON,
        "the degenerate composition must fail open: clean {clean:.3} vs attacked {attacked:.3}"
    );
}
