//! Quickstart: train an ABD-HFL hierarchy under a 30 % label-flipping
//! attack and watch it hold while plain averaging would collapse.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use abd_hfl::attacks::{DataAttack, Placement};
use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::run::run;
use abd_hfl::core::theory;

fn main() {
    // The paper's topology: 3 levels, clusters of 4, 4 top nodes, 64
    // clients — with 30 % of clients flipping all their labels to "9".
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.30,
        placement: Placement::Prefix,
    };
    // `quick` shrinks the dataset and round count so this example runs in
    // seconds; `HflConfig::paper_iid` is the full Table V configuration.
    let mut cfg = HflConfig::quick(attack, 42);
    cfg.rounds = 40;
    cfg.eval_every = 10;

    println!("ABD-HFL quickstart — 64 clients, 30% Byzantine (Type I label flip)");
    println!(
        "theoretical tolerance of this structure: {:.2}% (Theorem 2)",
        theory::paper_tolerance_bound() * 100.0
    );

    let result = run(&cfg);
    println!("\nround  test-accuracy");
    for (round, acc) in &result.accuracy {
        println!("{round:>5}  {:.1}%", acc * 100.0);
    }
    println!(
        "\nfinal accuracy: {:.1}%  (messages: {}, payload: {:.1} MiB, proposals excluded by consensus: {})",
        result.final_accuracy * 100.0,
        result.messages,
        result.bytes as f64 / (1024.0 * 1024.0),
        result.excluded_total,
    );
}
