//! The four Byzantine-setting combinations of Table III, quantified:
//! accuracy under attack and communication cost per scheme.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use abd_hfl::attacks::{DataAttack, Placement};
use abd_hfl::consensus::ConsensusKind;
use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::run::run;
use abd_hfl::core::scheme::Scheme;
use abd_hfl::robust::AggregatorKind;

fn main() {
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.4,
        placement: Placement::Prefix,
    };

    println!("Type I attack @ 40% malicious, 30 rounds (reduced for the example)\n");
    println!(
        "{:<38}  {:>9}  {:>10}  {:>10}",
        "scheme", "accuracy", "messages", "MiB"
    );

    for scheme in Scheme::ALL {
        let mut cfg = HflConfig::quick(attack.clone(), 11);
        cfg.rounds = 30;
        cfg.eval_every = 30;
        cfg.levels = scheme.level_aggs(
            3,
            AggregatorKind::MultiKrum { f: 1, m: 3 },
            ConsensusKind::VoteMajority,
        );
        let r = run(&cfg);
        println!(
            "{:<38}  {:>8.1}%  {:>10}  {:>10.1}",
            scheme.name(),
            r.final_accuracy * 100.0,
            r.messages,
            r.bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\nTable IV's qualitative ranking: scheme 4 most robust & most expensive,");
    println!("scheme 3 cheapest; schemes 1/2 balance the two (the paper evaluates 1).");
}
