//! Explore ABD-HFL structures and their Byzantine-tolerance theory:
//! ECSM/ACSM hierarchies, Theorem 2 bounds per level, Corollary 3 depth
//! scaling, and a Definition 4 worst-case adversary placement.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use abd_hfl::core::theory;
use abd_hfl::simnet::Hierarchy;

fn main() {
    // --- The paper's evaluation structure -------------------------------
    let h = Hierarchy::ecsm(3, 4, 4);
    println!("ECSM hierarchy (paper §V): 3 levels, m = 4, Nt = 4");
    for l in 0..h.num_levels() {
        let level = h.level(l);
        println!(
            "  level {l}: {:>3} nodes in {:>2} clusters (Corollary 1: Nt·m^ℓ = {})",
            level.num_nodes(),
            level.num_clusters(),
            theory::corollary1_level_size(4, 4, l)
        );
    }

    // --- Theorem 2 bounds ------------------------------------------------
    println!("\nTheorem 2 (γ1 = γ2 = 25 %): max Byzantine proportion per level");
    for l in 0..3 {
        println!(
            "  level {l}: {:.4}%",
            theory::theorem2_max_byzantine_ratio(0.25, 0.25, l) * 100.0
        );
    }

    // --- Corollary 3: depth scaling at fixed client count ---------------
    println!("\nCorollary 3: bottom-level tolerance vs structure depth");
    for levels in 2..=6 {
        println!(
            "  {levels} levels: {:.2}%",
            theory::corollary3_bottom_tolerance(0.25, 0.25, levels) * 100.0
        );
    }

    // --- Definition 4 worst-case placement ------------------------------
    let mask = theory::definition4_placement(&h, 1, 1);
    let bad = mask.iter().filter(|b| **b).count();
    println!(
        "\nDefinition 4 placement (1 Byzantine top subtree + 1 per honest cluster):"
    );
    println!(
        "  {bad}/{} bottom clients Byzantine = {:.4}% — exactly the Theorem 2 bound",
        mask.len(),
        bad as f64 / mask.len() as f64 * 100.0
    );

    // --- An ACSM structure ----------------------------------------------
    let acsm = Hierarchy::acsm_random(100, 3, 3, 7, 1);
    println!("\nACSM hierarchy: 100 clients, 3 levels, cluster sizes 3–7 (random)");
    for l in 0..acsm.num_levels() {
        let level = acsm.level(l);
        let sizes: Vec<usize> = level.clusters.iter().map(|c| c.len()).collect();
        println!(
            "  level {l}: {} nodes, cluster sizes {:?}",
            level.num_nodes(),
            &sizes[..sizes.len().min(10)]
        );
    }
    // Theorem 3: tolerance is inversely proportional to the relative
    // reliable number ψ.
    println!("\nTheorem 3 (ACSM): max Byzantine proportion = 1 − (1−γ2)·ψ");
    for psi in [1.0, 0.9, 0.75, 0.5] {
        println!(
            "  ψ = {psi:.2}: {:.2}%",
            theory::theorem3_max_byzantine_ratio(0.25, psi, false) * 100.0
        );
    }
}
