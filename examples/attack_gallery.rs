//! A gallery of every Byzantine attack in Table I, each run briefly
//! against (a) undefended vanilla averaging and (b) ABD-HFL — a compact
//! tour of the threat model and the defense.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use abd_hfl::attacks::{DataAttack, ModelAttack, Placement};
use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::run::run;
use abd_hfl::core::vanilla::run_vanilla;
use abd_hfl::robust::AggregatorKind;

fn main() {
    let p = 0.3;
    let place = Placement::Prefix;
    let attacks: Vec<(&str, AttackCfg)> = vec![
        ("none (baseline)", AttackCfg::None),
        (
            "label flip → 9 (Type I)",
            AttackCfg::Data {
                attack: DataAttack::type_i(),
                proportion: p,
                placement: place,
            },
        ),
        (
            "random labels (Type II)",
            AttackCfg::Data {
                attack: DataAttack::type_ii(),
                proportion: p,
                placement: place,
            },
        ),
        (
            "feature noise σ=4",
            AttackCfg::Data {
                attack: DataAttack::FeatureNoise { std: 4.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "backdoor trigger",
            AttackCfg::Data {
                attack: DataAttack::BackdoorTrigger {
                    offset: 0,
                    width: 8,
                    value: 6.0,
                    target: 7,
                    fraction: 0.5,
                },
                proportion: p,
                placement: place,
            },
        ),
        (
            "sign flip ×4",
            AttackCfg::Model {
                attack: ModelAttack::SignFlip { scale: 4.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "Gaussian noise σ=2",
            AttackCfg::Model {
                attack: ModelAttack::GaussianNoise { std: 2.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "ALIE z=2",
            AttackCfg::Model {
                attack: ModelAttack::Alie { z: 2.0 },
                proportion: p,
                placement: place,
            },
        ),
        (
            "IPM ε=0.8",
            AttackCfg::Model {
                attack: ModelAttack::Ipm { epsilon: 0.8 },
                proportion: p,
                placement: place,
            },
        ),
    ];

    println!("Every Table I attack at 30% malicious, 20 rounds (reduced for the example)\n");
    println!(
        "{:<26}  {:>16}  {:>10}",
        "attack", "vanilla (FedAvg)", "ABD-HFL"
    );
    for (name, attack) in attacks {
        let mut cfg = HflConfig::quick(attack, 31);
        cfg.rounds = 20;
        cfg.eval_every = 20;
        let vanilla = run_vanilla(&cfg, AggregatorKind::FedAvg);
        let abd = run(&cfg);
        println!(
            "{:<26}  {:>15.1}%  {:>9.1}%",
            name,
            vanilla.final_accuracy * 100.0,
            abd.final_accuracy * 100.0
        );
    }
    println!("\nUndefended averaging is the damage meter; ABD-HFL's hierarchy");
    println!("(Multi-Krum clusters + validation-vote top) absorbs each attack.");
}
