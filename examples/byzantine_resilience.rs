//! Byzantine-resilience sweep: ABD-HFL vs vanilla FL as the malicious
//! proportion climbs through the theoretical tolerance bound — a
//! miniature of the paper's Table V.
//!
//! ```text
//! cargo run --release --example byzantine_resilience
//! ```

use abd_hfl::attacks::{DataAttack, Placement};
use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::run::run;
use abd_hfl::core::theory;
use abd_hfl::core::vanilla::{paper_vanilla_aggregator, run_vanilla};

fn main() {
    let proportions = [0.0, 0.2, 0.4, 0.578, 0.65];
    let bound = theory::paper_tolerance_bound();

    println!("Type I label-flip attack, 64 clients, 40 rounds (reduced for the example)");
    println!("Theorem 2 tolerance bound: {:.2}%\n", bound * 100.0);
    println!("{:>10}  {:>10}  {:>10}", "malicious", "ABD-HFL", "vanilla");

    for p in proportions {
        let attack = if p == 0.0 {
            AttackCfg::None
        } else {
            AttackCfg::Data {
                attack: DataAttack::type_i(),
                proportion: p,
                placement: Placement::Prefix,
            }
        };
        let mut cfg = HflConfig::quick(attack, 7);
        cfg.rounds = 40;
        cfg.eval_every = 40;
        let abd = run(&cfg);
        let vanilla = run_vanilla(&cfg, paper_vanilla_aggregator(true, 64));
        let marker = if p > bound { " (beyond bound)" } else { "" };
        println!(
            "{:>9.1}%  {:>9.1}%  {:>9.1}%{marker}",
            p * 100.0,
            abd.final_accuracy * 100.0,
            vanilla.final_accuracy * 100.0
        );
    }
    println!("\nVanilla Multi-Krum assumes 25% malicious and collapses past it;");
    println!("ABD-HFL's layer-by-layer filtering plus top-level voting holds to the bound.");
}
