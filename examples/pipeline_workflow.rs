//! The asynchronous pipeline learning workflow: run ABD-HFL on the
//! discrete-event network simulator and print the per-round timing
//! decomposition (σw, σ, ν) for two flag-level choices — the trade-off
//! of paper §III-D2.
//!
//! ```text
//! cargo run --release --example pipeline_workflow
//! ```

use abd_hfl::core::config::{AttackCfg, HflConfig};
use abd_hfl::core::pipeline::PipelineConfig;
use abd_hfl::core::run::RunOptions;
use abd_hfl::ml::synth::SynthConfig;

fn main() {
    let mut cfg = HflConfig::quick(AttackCfg::None, 3);
    cfg.data = SynthConfig {
        train_samples: 6_400,
        test_samples: 1_000,
        ..SynthConfig::default()
    };
    let pcfg = PipelineConfig {
        rounds: 6,
        ..PipelineConfig::default()
    };

    for flag_level in [1usize, 2] {
        cfg.flag_level = flag_level;
        let res = RunOptions::pipeline(&pcfg).run(&cfg).into_pipeline().0;
        println!(
            "\n=== flag level ℓF = {flag_level} ({} the top) ===",
            if flag_level == 1 {
                "next to"
            } else {
                "far from"
            }
        );
        println!(
            "{:>5}  {:>10}  {:>10}  {:>8}",
            "round", "σw (ms)", "σ (ms)", "ν"
        );
        for r in &res.rounds {
            println!(
                "{:>5}  {:>10.1}  {:>10.1}  {:>8.3}",
                r.round,
                r.sigma_w * 1e3,
                r.sigma * 1e3,
                r.nu
            );
        }
        println!(
            "round period {:.1} ms | total sim time {:.1} ms | messages {} | final accuracy {:.1}%",
            res.mean_period * 1e3,
            res.sim_time_secs * 1e3,
            res.messages,
            res.final_accuracy * 100.0
        );
    }
    println!("\nν = (σp + σg)/σ — the share of aggregation time the pipeline hides");
    println!("(Eq. 3). A flag level closer to the bottom waits less (smaller σw) but");
    println!("relies more on the correction factor when the global model arrives.");
}
