#!/usr/bin/env bash
# Regenerates every table and figure of the ABD-HFL paper (DESIGN.md §3).
# Full fidelity run:   ./scripts/run_all_experiments.sh
# Smoke run:           ./scripts/run_all_experiments.sh --quick
set -uo pipefail
EXTRA="${1:-}"
OUT=results
BIN=target/release
mkdir -p "$OUT"
run() {
  local name="$1"; shift
  echo "=== $name ==="
  "$BIN/$name" "$@" $EXTRA > "$OUT/$name.md" 2> "$OUT/$name.log" || echo "FAILED: $name"
}
cargo build --release -p hfl-bench
run repro_table5 --rounds 100 --reps 3 --out "$OUT"
run repro_fig3 --rounds 100 --reps 3 --out "$OUT"
run repro_tolerance --out "$OUT"
run repro_schemes --out "$OUT"
run repro_attacks --out "$OUT"
run repro_defenses --out "$OUT"
run repro_efficiency --out "$OUT"
run repro_robustness_ablation --out "$OUT"
run repro_async --out "$OUT"
run repro_acsm --out "$OUT"
run repro_faults --out "$OUT"
run repro_adaptive --out "$OUT"
run repro_combined --out "$OUT"
run repro_gallery --out "$OUT"
run snapshot_resume --out "$OUT/snapshot"
run perf_baseline --out "$OUT"
# fuzz_oracle and bisect_divergence take no --quick flag; run them bare.
echo "=== fuzz_oracle ==="
iters=200; [ "$EXTRA" = "--quick" ] && iters=50
"$BIN/fuzz_oracle" --iters "$iters" --seed 42 --snapshots \
    > "$OUT/fuzz_oracle.md" 2> "$OUT/fuzz_oracle.log" || echo "FAILED: fuzz_oracle"
echo "=== bisect_divergence ==="
"$BIN/bisect_divergence" \
    --manifest-a "$OUT/snapshot/clean.straight.manifest.json" \
    --manifest-b "$OUT/snapshot/clean.resumed.manifest.json" \
    > "$OUT/bisect_divergence.md" 2> "$OUT/bisect_divergence.log" \
    || echo "FAILED: bisect_divergence"
echo "all experiments done; markdown in $OUT/*.md, raw data in $OUT/*.csv"
