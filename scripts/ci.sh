#!/usr/bin/env bash
# Local CI gate: run before opening a PR. Mirrors what reviewers check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q

# Kernel-equivalence gate: every optimized hot kernel (blocked
# distances, fused reductions, work-stealing parallel paths) must be
# byte-identical to its retained naive reference across thread counts
# 1/2/4/8 and adversarial values. Runs inside `cargo test -q` too; the
# explicit invocation keeps the gate visible and independently
# runnable.
cargo test -q -p abd-hfl --test kernel_equivalence
echo "kernel equivalence gate passed"

# Allocation-regression gate: after a 5-round warmup, synchronous BRA
# rounds perform exactly zero heap allocations on both the clean and
# the faulted fixture (the workspace arena absorbs every per-round
# need). A single new Vec on the round path fails this.
cargo test -q -p hfl-bench --test alloc_regression
echo "allocation regression gate passed"

# Fault-injection smoke + determinism gate: two same-seed sweeps must
# produce byte-identical manifest logs.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -p hfl-bench --bin repro_faults -- \
    --quick --seed 42 --out "$tmp/a" >/dev/null
cargo run --release -p hfl-bench --bin repro_faults -- \
    --quick --seed 42 --out "$tmp/b" >/dev/null
diff "$tmp/a/faults.manifests.jsonl" "$tmp/b/faults.manifests.jsonl" \
    || { echo "repro_faults manifests differ across same-seed runs"; exit 1; }
echo "repro_faults determinism gate passed"

# Arms-race smoke + determinism gate: the adaptive adversary, suspicion
# layer and protocol attacks are stateful across rounds — two same-seed
# sweeps must still produce byte-identical manifest logs.
cargo run --release -p hfl-bench --bin repro_adaptive -- \
    --quick --seed 42 --out "$tmp/c" >/dev/null
cargo run --release -p hfl-bench --bin repro_adaptive -- \
    --quick --seed 42 --out "$tmp/d" >/dev/null
diff "$tmp/c/adaptive.manifests.jsonl" "$tmp/d/adaptive.manifests.jsonl" \
    || { echo "repro_adaptive manifests differ across same-seed runs"; exit 1; }
echo "repro_adaptive determinism gate passed"

# Combined-stress smoke + determinism gate: faults and the arms race in
# the same run exercise every layer of the round engine at once — two
# same-seed sweeps must still produce byte-identical manifest logs.
cargo run --release -p hfl-bench --bin repro_combined -- \
    --quick --seed 42 --out "$tmp/e" >/dev/null
cargo run --release -p hfl-bench --bin repro_combined -- \
    --quick --seed 42 --out "$tmp/f" >/dev/null
diff "$tmp/e/combined.manifests.jsonl" "$tmp/f/combined.manifests.jsonl" \
    || { echo "repro_combined manifests differ across same-seed runs"; exit 1; }
echo "repro_combined determinism gate passed"

# Deadline-buffer smoke + determinism gate: the async round engine's
# quorum-or-deadline grid (DESIGN.md §12) synthesizes arrivals from a
# dedicated RNG stream — two same-seed sweeps must still produce
# byte-identical manifest logs.
cargo run --release -p hfl-bench --bin repro_async -- \
    --quick --seed 42 --filter deadline --out "$tmp/g" >/dev/null
cargo run --release -p hfl-bench --bin repro_async -- \
    --quick --seed 42 --filter deadline --out "$tmp/h" >/dev/null
diff "$tmp/g/async.manifests.jsonl" "$tmp/h/async.manifests.jsonl" \
    || { echo "repro_async manifests differ across same-seed runs"; exit 1; }
echo "repro_async determinism gate passed"

# Attack–defense gallery smoke + determinism gate: the full static
# attack × composed defense × distribution grid (DESIGN.md §13) — two
# same-seed sweeps must produce byte-identical manifest logs (the
# Dirichlet partition re-draw loop and AGR bisections are seeded).
cargo run --release -p hfl-bench --bin repro_gallery -- \
    --quick --seed 42 --out "$tmp/i" >/dev/null
cargo run --release -p hfl-bench --bin repro_gallery -- \
    --quick --seed 42 --out "$tmp/j" >/dev/null
diff "$tmp/i/gallery.manifests.jsonl" "$tmp/j/gallery.manifests.jsonl" \
    || { echo "repro_gallery manifests differ across same-seed runs"; exit 1; }
echo "repro_gallery determinism gate passed"

# Snapshot-resume determinism gate: for every fixture class, 20 rounds
# straight through must equal 10 rounds + resume(10 more) from the
# round-10 snapshot, byte-for-byte at the manifest level (the binary
# also pushes the snapshot through its byte codec, so the on-disk
# format is what is proven). See DESIGN.md §11.
for config in clean faulted armed withhold; do
    cargo run --release -p hfl-bench --bin snapshot_resume -- \
        --config "$config" --rounds 20 --at 10 --out "$tmp/snapshot" \
        || { echo "snapshot resume diverged for '$config'"; exit 1; }
    diff "$tmp/snapshot/$config.straight.manifest.json" \
         "$tmp/snapshot/$config.resumed.manifest.json" \
        || { echo "snapshot manifests differ for '$config'"; exit 1; }
done
echo "snapshot resume determinism gate passed"

# Population-scale smoke + determinism gate: a 10⁴-client population
# sampled down to a 64-slot cohort each round over the streaming
# kernels (DESIGN.md §14) — two same-seed runs must produce
# byte-identical manifest logs, proving the per-round sampling stream
# and the lazy shard derivation are pure functions of the seed.
cargo run --release -p hfl-bench --bin repro_scale -- \
    --smoke --seed 42 --out "$tmp/k" >/dev/null
cargo run --release -p hfl-bench --bin repro_scale -- \
    --smoke --seed 42 --out "$tmp/l" >/dev/null
diff "$tmp/k/scale.manifests.jsonl" "$tmp/l/scale.manifests.jsonl" \
    || { echo "repro_scale manifests differ across same-seed runs"; exit 1; }
test -s "$tmp/k/BENCH_9.json" \
    || { echo "repro_scale produced no BENCH_9.json"; exit 1; }
echo "repro_scale determinism gate passed"

# Performance baseline: sync + async rounds/sec, updates/sec, kernel
# ns/op, bytes/round and the per-round allocation peak. One run writes
# BENCH_9.json (the *before* view — hot kernels timed through their
# retained naive references) and BENCH_10.json (the *after* view —
# optimized hot paths with embedded speedups and the steady-state
# allocation count, self-validated to be exactly zero). bench_compare
# joins the two and hard-fails on a >25% regression of any shared
# kernel.
cargo run --release -p hfl-bench --bin perf_baseline -- \
    --quick --out "$tmp/perf" >/dev/null
test -s "$tmp/perf/BENCH_9.json" \
    || { echo "perf_baseline produced no BENCH_9.json"; exit 1; }
test -s "$tmp/perf/BENCH_10.json" \
    || { echo "perf_baseline produced no BENCH_10.json"; exit 1; }
cargo run --release -p hfl-bench --bin bench_compare -- \
    "$tmp/perf/BENCH_9.json" "$tmp/perf/BENCH_10.json" \
    || { echo "hot-path kernels regressed past the 25% budget"; exit 1; }
echo "perf baseline + hot-path no-regression gate passed"

# Oracle fuzz gate: a fixed-seed scenario-fuzzing budget (override the
# iteration count with FUZZ_ITERS), then the five mutation self-checks
# — deliberately corrupted observations must be caught by the matching
# oracle and shrunk to a minimal repro (see DESIGN.md §10). Corpus
# replay itself runs inside `cargo test` (tests/oracle_corpus.rs).
# The fuzz pass runs with --snapshots (shrink candidates resume from
# checkpoints); the mutation loop then proves cached and uncached
# shrinking reach the *same* minimal TOML repro.
cargo run --release -p hfl-bench --bin fuzz_oracle -- \
    --iters "${FUZZ_ITERS:-200}" --seed 42 --snapshots
for mutation in quorum conservation determinism staleness defense-bypass; do
    cargo run --release -p hfl-bench --bin fuzz_oracle -- \
        --mutation "$mutation" --seed 42 --out "$tmp/oracle" >/dev/null \
        || { echo "oracle mutation check '$mutation' was not caught"; exit 1; }
    cargo run --release -p hfl-bench --bin fuzz_oracle -- \
        --mutation "$mutation" --seed 42 --snapshots --out "$tmp/oracle-snap" >/dev/null \
        || { echo "oracle mutation check '$mutation' (snapshots) was not caught"; exit 1; }
    diff "$tmp/oracle/mutation_$mutation.toml" "$tmp/oracle-snap/mutation_$mutation.toml" \
        || { echo "snapshot-seeded shrink found a different '$mutation' repro"; exit 1; }
done
echo "oracle fuzz + mutation gates passed"
