#!/usr/bin/env bash
# Local CI gate: run before opening a PR. Mirrors what reviewers check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
